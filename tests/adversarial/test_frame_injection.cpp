// Frame-layer replay/forgery wall.
//
// The protocol-level audit (test_adversarial.cpp) catches agents that
// cheat INSIDE well-formed frames.  This suite attacks one layer down:
// raw bytes pushed into a transport's ingress path without going
// through Send() — a forged sender id on a single-owner egress
// channel, a duplicated (replayed) frame with no matching send ticket,
// a shared-memory ring record with a stale sequence number, a record
// squatting in another pair's ring, a corrupt frame.  Every one must
// surface as a structured TransportFault naming the compromised
// channel — never an abort, never silent acceptance into the ledger —
// while the surviving channels keep flowing.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cerrno>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/shm_transport.h"
#include "net/socket_transport.h"

namespace pem::net {
namespace {

void ExpectNoZombies() {
  int status = 0;
  errno = 0;
  EXPECT_EQ(waitpid(-1, &status, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

Message Msg(AgentId from, AgentId to, uint32_t type = 0x1000,
            std::vector<uint8_t> payload = {1, 2, 3, 4}) {
  return Message{from, to, type, std::move(payload)};
}

// The router/snooper threads latch faults asynchronously; poll with a
// deadline far below the ctest timeout.
template <typename Pred>
bool WaitFor(Pred pred, int timeout_ms = 10'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// Works for both Transport (socket) and AgentSupervisor (shm) faults.
template <typename T>
std::optional<TransportFault> AwaitFault(const T& t) {
  WaitFor([&t] { return t.fault().has_value(); });
  return t.fault();
}

// --- SocketTransport ingress --------------------------------------------

TEST(FrameInjection, SocketForgedSenderIdLatchesStructuredFault) {
  SocketTransport st(3);
  // Agent 1's egress channel carries a frame claiming to be from agent
  // 2: impossible without squatting on the channel, since Send() pins
  // the sender to the channel owner.
  st.InjectEgressBytesForTest(1, EncodeFrame(Msg(2, 0)));
  const std::optional<TransportFault> fault = AwaitFault(st);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->agent, 1);
  EXPECT_EQ(fault->code, ErrorCode::kProtocolViolation);
  EXPECT_NE(fault->detail.find("forged sender"), std::string::npos)
      << fault->detail;
  // The forged frame never entered the ledger or an inbox.
  EXPECT_EQ(st.total_bytes(), 0u);
  EXPECT_FALSE(st.HasMessage(0));
  // Survivors keep flowing: the other channels still route.
  st.Send(Msg(0, 2));
  const std::optional<Message> got = st.Receive(2);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(*got == Msg(0, 2));
}

TEST(FrameInjection, SocketUnsolicitedFrameHasNoTicket) {
  SocketTransport st(2);
  // Well-formed frame, correct sender id, but it never went through
  // Send() — no ledger ticket exists, which proves the injection.
  st.InjectEgressBytesForTest(0, EncodeFrame(Msg(0, 1)));
  const std::optional<TransportFault> fault = AwaitFault(st);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->agent, 0);
  EXPECT_NE(fault->detail.find("no matching send ticket"), std::string::npos)
      << fault->detail;
  EXPECT_EQ(st.total_bytes(), 0u);
}

TEST(FrameInjection, SocketDuplicatedFrameIsAReplay) {
  SocketTransport st(2);
  const Message real = Msg(0, 1);
  st.Send(real);  // ticketed, routed, accounted
  // An adversary replays the identical wire bytes: one ticket, two
  // decoded frames — the second proves the replay.
  st.InjectEgressBytesForTest(0, EncodeFrame(real));
  const std::optional<TransportFault> fault = AwaitFault(st);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->agent, 0);
  EXPECT_NE(fault->detail.find("no matching send ticket"), std::string::npos)
      << fault->detail;
  // Exactly the legitimate copy was delivered and accounted.
  EXPECT_EQ(st.total_bytes(), FramedSize(real));
  const std::optional<Message> got = st.Receive(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(*got == real);
  EXPECT_FALSE(st.HasMessage(1));
}

TEST(FrameInjection, SocketStaleSequenceReplayAfterLegitTraffic) {
  SocketTransport st(3);
  // A burst of legitimate traffic, then a replay of the FIRST frame:
  // ticket accounting (3 tickets, 4 decoded frames) catches it even
  // though the bytes themselves are indistinguishable from history.
  const Message first = Msg(1, 0, 0x2000, {9, 9});
  st.Send(first);
  st.Send(Msg(1, 2, 0x2001));
  st.Send(Msg(1, 0, 0x2002));
  st.InjectEgressBytesForTest(1, EncodeFrame(first));
  const std::optional<TransportFault> fault = AwaitFault(st);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->agent, 1);
  // Only the three ticketed frames were accounted.
  EXPECT_EQ(st.total_messages(), 3u);
}

// --- ShmTransport ring ingress ------------------------------------------

// Children that never touch the rings: the adversary writes records
// into the shared mapping directly, and the parent-side snooper is the
// detector under test.  Each scenario shuts the children down first
// (so the single-producer rings are quiescent) and then injects.
AgentSupervisor::ChildMain IdleChild() {
  return [](AgentId, Transport&, ControlChannel& ctl) -> int {
    for (;;) {
      const ControlRecord rec = ctl.Read(/*timeout_ms=*/120'000);
      if (rec.tag == kCtlCmdShutdown) {
        ctl.Write(kCtlRepDone);
        return 0;
      }
    }
  };
}

TEST(FrameInjection, ShmCorruptFrameRecordLatchesStructuredFault) {
  ShmTransport shm(2, IdleChild());
  shm.Shutdown();
  shm.InjectRingRecordForTest(0, 1, /*seq=*/0, Msg(0, 1),
                              /*corrupt_frame=*/true);
  const std::optional<TransportFault> fault = AwaitFault(shm);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->agent, 0);
  EXPECT_EQ(fault->code, ErrorCode::kProtocolViolation);
  EXPECT_NE(fault->detail.find("fails checksum"), std::string::npos)
      << fault->detail;
  EXPECT_EQ(shm.total_bytes(), 0u);
  ExpectNoZombies();
}

TEST(FrameInjection, ShmRecordInWrongPairsRingIsAForgery) {
  ShmTransport shm(3, IdleChild());
  shm.Shutdown();
  // Ring 0 -> 1 carries a frame claiming the 2 -> 1 pair: the ring
  // IS the sender's identity, so the mismatch convicts ring owner 0.
  shm.InjectRingRecordForTest(0, 1, /*seq=*/0, Msg(2, 1));
  const std::optional<TransportFault> fault = AwaitFault(shm);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->agent, 0);
  EXPECT_NE(fault->detail.find("frame names pair"), std::string::npos)
      << fault->detail;
  EXPECT_EQ(shm.total_bytes(), 0u);
  ExpectNoZombies();
}

TEST(FrameInjection, ShmStaleSequenceRecordIsAReplay) {
  ShmTransport shm(2, IdleChild());
  shm.Shutdown();
  const Message real = Msg(0, 1);
  // A valid record is snooped and accounted once...
  shm.InjectRingRecordForTest(0, 1, /*seq=*/0, real);
  ASSERT_TRUE(WaitFor([&shm, &real] {
    return shm.total_bytes() == FramedSize(real);
  }));
  // ...then the identical record (same sender sequence) again: the
  // snooper has already merged seq 0, so this can only be a replay.
  shm.InjectRingRecordForTest(0, 1, /*seq=*/0, real);
  const std::optional<TransportFault> fault = AwaitFault(shm);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->agent, 0);
  EXPECT_NE(fault->detail.find("replayed ring record"), std::string::npos)
      << fault->detail;
  // The replay was not accounted: the ledger still holds one copy.
  EXPECT_EQ(shm.total_bytes(), FramedSize(real));
  ExpectNoZombies();
}

TEST(FrameInjection, ShmDuplicateStashedSequenceIsAReplay) {
  ShmTransport shm(2, IdleChild());
  shm.Shutdown();
  // seq 5 with seq 0..4 missing parks in the reorder stash; a second
  // record with the SAME future sequence is a replay even though the
  // merge never reached it.
  shm.InjectRingRecordForTest(0, 1, /*seq=*/5, Msg(0, 1));
  shm.InjectRingRecordForTest(0, 1, /*seq=*/5, Msg(0, 1));
  const std::optional<TransportFault> fault = AwaitFault(shm);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->agent, 0);
  EXPECT_NE(fault->detail.find("replayed ring record"), std::string::npos)
      << fault->detail;
  ExpectNoZombies();
}

TEST(FrameInjection, ShmSurvivingRingsKeepAccountingAfterFault) {
  ShmTransport shm(3, IdleChild());
  shm.Shutdown();
  shm.InjectRingRecordForTest(0, 1, /*seq=*/0, Msg(0, 1),
                              /*corrupt_frame=*/true);
  ASSERT_TRUE(WaitFor([&shm] { return shm.fault().has_value(); }));
  // The compromised ring is convicted, but the other senders' rings
  // still feed the ledger.
  const Message honest = Msg(2, 1, 0x3000, {7});
  shm.InjectRingRecordForTest(2, 1, /*seq=*/0, honest);
  EXPECT_TRUE(WaitFor([&shm, &honest] {
    return shm.total_bytes() == FramedSize(honest);
  }));
  EXPECT_EQ(shm.stats(2).bytes_sent, FramedSize(honest));
  ExpectNoZombies();
}

}  // namespace
}  // namespace pem::net
