#include "protocol/context.h"

#include <gtest/gtest.h>

#include "net/bus.h"

#include <set>

namespace pem::protocol {
namespace {

std::vector<Party> MakeParties(const std::vector<double>& nets,
                               crypto::Rng& rng) {
  std::vector<Party> parties;
  for (size_t i = 0; i < nets.size(); ++i) {
    grid::AgentParams params;
    parties.emplace_back(static_cast<net::AgentId>(i), params);
    grid::WindowState st;
    st.generation_kwh = nets[i] > 0 ? nets[i] : 0.0;
    st.load_kwh = nets[i] < 0 ? -nets[i] : 0.0;
    parties.back().BeginWindow(st, int64_t{1} << 30, rng);
  }
  return parties;
}

PemConfig TestConfig() {
  PemConfig cfg;
  cfg.key_bits = 128;
  return cfg;
}

TEST(Coalitions, SplitsBySign) {
  crypto::DeterministicRng rng(1);
  std::vector<Party> parties = MakeParties({1.0, -1.0, 0.0, 2.0}, rng);
  const Coalitions c = FormCoalitions(parties);
  EXPECT_EQ(c.sellers, (std::vector<size_t>{0, 3}));
  EXPECT_EQ(c.buyers, (std::vector<size_t>{1}));
}

TEST(PickRandomIndex, OnlyReturnsCandidates) {
  crypto::DeterministicRng rng(2);
  const std::vector<size_t> candidates = {3, 7, 11};
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) {
    const size_t pick = PickRandomIndex(candidates, rng);
    EXPECT_TRUE(pick == 3 || pick == 7 || pick == 11);
    seen.insert(pick);
  }
  EXPECT_EQ(seen.size(), 3u);  // all candidates eventually drawn
}

TEST(PickRandomIndexDeath, EmptyAborts) {
  crypto::DeterministicRng rng(3);
  EXPECT_DEATH((void)PickRandomIndex({}, rng), "empty");
}

TEST(CiphertextWire, RoundTrip) {
  crypto::DeterministicRng rng(4);
  const crypto::PaillierKeyPair kp = crypto::GeneratePaillierKeyPair(128, rng);
  const crypto::PaillierCiphertext ct = kp.pub.EncryptSigned(-1234, rng);
  net::ByteWriter w;
  WriteCiphertext(w, kp.pub, ct);
  EXPECT_EQ(w.size(), kp.pub.ciphertext_bytes() + 4);  // + length prefix
  net::ByteReader r(w.data());
  const crypto::PaillierCiphertext back = ReadCiphertext(r);
  EXPECT_EQ(back.value, ct.value);
  EXPECT_EQ(kp.priv.DecryptSigned(back), -1234);
}

TEST(RingAggregate, SumsAllContributions) {
  crypto::DeterministicRng rng(5);
  std::vector<Party> parties = MakeParties({1.0, 2.0, 3.0, 4.0}, rng);
  parties[0].EnsureKeys(128, rng);
  net::MessageBus bus(4);
  std::vector<net::Endpoint> eps = bus.endpoints();
  const PemConfig cfg = TestConfig();
  ProtocolContext ctx{eps, rng, cfg};
  const std::vector<size_t> ring = {1, 2, 3};
  const crypto::PaillierCiphertext agg =
      RingAggregate(ctx, parties[0].public_key(), parties, ring,
                    [](const Party& p) { return p.net_raw(); },
                    parties[0].id());
  EXPECT_EQ(parties[0].private_key().DecryptSigned(agg), 9'000'000);
}

TEST(RingAggregate, SingleMemberRing) {
  crypto::DeterministicRng rng(6);
  std::vector<Party> parties = MakeParties({5.0, -1.0}, rng);
  parties[1].EnsureKeys(128, rng);
  net::MessageBus bus(2);
  std::vector<net::Endpoint> eps = bus.endpoints();
  const PemConfig cfg = TestConfig();
  ProtocolContext ctx{eps, rng, cfg};
  const std::vector<size_t> ring = {0};
  const crypto::PaillierCiphertext agg =
      RingAggregate(ctx, parties[1].public_key(), parties, ring,
                    [](const Party& p) { return p.net_raw(); },
                    parties[1].id());
  EXPECT_EQ(parties[1].private_key().DecryptSigned(agg), 5'000'000);
}

TEST(RingAggregate, HandlesNegativeContributions) {
  crypto::DeterministicRng rng(7);
  std::vector<Party> parties = MakeParties({-1.5, -2.5, 1.0}, rng);
  parties[2].EnsureKeys(128, rng);
  net::MessageBus bus(3);
  std::vector<net::Endpoint> eps = bus.endpoints();
  const PemConfig cfg = TestConfig();
  ProtocolContext ctx{eps, rng, cfg};
  const std::vector<size_t> ring = {0, 1};
  const crypto::PaillierCiphertext agg =
      RingAggregate(ctx, parties[2].public_key(), parties, ring,
                    [](const Party& p) { return p.net_raw(); },
                    parties[2].id());
  EXPECT_EQ(parties[2].private_key().DecryptSigned(agg), -4'000'000);
}

TEST(RingAggregate, EveryHopIsAccounted) {
  crypto::DeterministicRng rng(8);
  std::vector<Party> parties = MakeParties({1.0, 1.0, 1.0, 1.0}, rng);
  parties[0].EnsureKeys(128, rng);
  net::MessageBus bus(4);
  std::vector<net::Endpoint> eps = bus.endpoints();
  const PemConfig cfg = TestConfig();
  ProtocolContext ctx{eps, rng, cfg};
  const std::vector<size_t> ring = {1, 2, 3};
  (void)RingAggregate(ctx, parties[0].public_key(), parties, ring,
                      [](const Party& p) { return p.net_raw(); },
                      parties[0].id());
  // Hops: 1->2, 2->3, 3->0.
  EXPECT_EQ(bus.total_messages(), 3u);
  EXPECT_GT(bus.stats(1).bytes_sent, 0u);
  EXPECT_GT(bus.stats(0).bytes_received, 0u);
}

TEST(RingAggregate, FinalRecipientInRingSkipsLastSend) {
  crypto::DeterministicRng rng(9);
  std::vector<Party> parties = MakeParties({1.0, 2.0}, rng);
  parties[1].EnsureKeys(128, rng);
  net::MessageBus bus(2);
  std::vector<net::Endpoint> eps = bus.endpoints();
  const PemConfig cfg = TestConfig();
  ProtocolContext ctx{eps, rng, cfg};
  // Ring ends at party 1, which is also the final recipient.
  const std::vector<size_t> ring = {0, 1};
  const crypto::PaillierCiphertext agg =
      RingAggregate(ctx, parties[1].public_key(), parties, ring,
                    [](const Party& p) { return p.net_raw(); },
                    parties[1].id());
  EXPECT_EQ(parties[1].private_key().DecryptSigned(agg), 3'000'000);
  EXPECT_EQ(bus.total_messages(), 1u);  // only the 0 -> 1 hop
}

TEST(BroadcastPublicKey, ReachesAllPeers) {
  crypto::DeterministicRng rng(10);
  std::vector<Party> parties = MakeParties({1.0, -1.0, -1.0}, rng);
  parties[0].EnsureKeys(128, rng);
  net::MessageBus bus(3);
  std::vector<net::Endpoint> eps = bus.endpoints();
  const PemConfig cfg = TestConfig();
  ProtocolContext ctx{eps, rng, cfg};
  BroadcastPublicKey(ctx, parties[0]);
  EXPECT_EQ(bus.total_messages(), 2u);
  EXPECT_FALSE(bus.HasMessage(1));  // drained by the helper
}

TEST(ExpectMessageDeath, WrongTypeAborts) {
  net::MessageBus bus(2);
  net::Endpoint receiver = bus.endpoint(1);
  bus.endpoint(0).Send(1, kMsgPrice, {});
  EXPECT_DEATH((void)ExpectMessage(receiver, kMsgRingHop), "unexpected");
}

TEST(ExpectMessageDeath, EmptyInboxAborts) {
  net::MessageBus bus(2);
  net::Endpoint receiver = bus.endpoint(0);
  EXPECT_DEATH((void)ExpectMessage(receiver, kMsgRingHop),
               "expected a message");
}

}  // namespace
}  // namespace pem::protocol
