#include "protocol/pricing.h"

#include <gtest/gtest.h>

#include "net/bus.h"

#include "market/stackelberg.h"

namespace pem::protocol {
namespace {

PemConfig TestConfig() {
  PemConfig cfg;
  cfg.key_bits = 128;
  return cfg;
}

struct AgentSpec {
  double generation = 0;
  double load = 0;
  double battery = 0;
  double k = 1.0;
  double epsilon = 0.9;
};

struct Harness {
  std::vector<Party> parties;
  net::MessageBus bus;
  std::vector<net::Endpoint> eps = bus.endpoints();
  crypto::DeterministicRng rng;

  Harness(const std::vector<AgentSpec>& specs, uint64_t seed)
      : bus(static_cast<int>(specs.size())), rng(seed) {
    for (size_t i = 0; i < specs.size(); ++i) {
      grid::AgentParams params;
      params.preference_k = specs[i].k;
      params.battery_epsilon = specs[i].epsilon;
      parties.emplace_back(static_cast<net::AgentId>(i), params);
      grid::WindowState st;
      st.generation_kwh = specs[i].generation;
      st.load_kwh = specs[i].load;
      st.battery_kwh = specs[i].battery;
      parties.back().BeginWindow(st, int64_t{1} << 30, rng);
    }
  }

  PricingResult Run(const PemConfig& cfg) {
    ProtocolContext ctx{eps, rng, cfg};
    return RunPrivatePricing(ctx, parties, FormCoalitions(parties));
  }
};

// The plaintext reference price for the same sellers.
double OraclePrice(const std::vector<AgentSpec>& specs,
                   const market::MarketParams& params) {
  std::vector<market::SellerGameInput> sellers;
  for (const AgentSpec& s : specs) {
    if (s.generation - s.load - s.battery > 0) {
      sellers.push_back({s.k, s.generation, s.epsilon, s.battery});
    }
  }
  return market::SolveStackelbergPrice(sellers, params).price;
}

TEST(Pricing, MatchesPlaintextOracleMidRange) {
  const std::vector<AgentSpec> specs = {
      {0.9, 0.1, 0.0, 0.85},  // seller
      {1.1, 0.2, 0.0, 0.95},  // seller
      {0.0, 1.0, 0.0, 1.0},   // buyer
  };
  Harness s(specs, 1);
  const PemConfig cfg = TestConfig();
  const PricingResult r = s.Run(cfg);
  EXPECT_NEAR(r.price, OraclePrice(specs, cfg.market), 1e-5);
  EXPECT_GE(r.price, cfg.market.price_floor);
  EXPECT_LE(r.price, cfg.market.price_ceiling);
}

TEST(Pricing, ClampsAtFloorLikeOracle) {
  // Tiny k forces the interior price below the floor.
  const std::vector<AgentSpec> specs = {
      {1.0, 0.1, 0.0, 0.2}, {0.0, 1.5, 0.0, 1.0}};
  Harness s(specs, 2);
  const PemConfig cfg = TestConfig();
  const PricingResult r = s.Run(cfg);
  EXPECT_DOUBLE_EQ(r.price, cfg.market.price_floor);
  EXPECT_LT(r.interior_price, cfg.market.price_floor);
}

TEST(Pricing, ClampsAtCeilingLikeOracle) {
  const std::vector<AgentSpec> specs = {
      {1.0, 0.1, 0.0, 4.0}, {0.0, 1.5, 0.0, 1.0}};
  Harness s(specs, 3);
  const PemConfig cfg = TestConfig();
  const PricingResult r = s.Run(cfg);
  EXPECT_DOUBLE_EQ(r.price, cfg.market.price_ceiling);
}

TEST(Pricing, AggregatesOnlySellerData) {
  const std::vector<AgentSpec> specs = {
      {2.0, 0.1, 0.0, 0.8},            // seller, k = 0.8
      {0.0, 1.0, 0.0, 123.0},          // buyer: its k must NOT enter
      {0.0, 2.0, 0.0, 55.0},           // buyer
  };
  Harness s(specs, 4);
  const PricingResult r = s.Run(TestConfig());
  EXPECT_NEAR(r.sums.sum_k, 0.8, 1e-6);
}

TEST(Pricing, BatteryTermsEnterTheSums) {
  const std::vector<AgentSpec> specs = {
      {2.0, 0.1, 0.5, 1.0, 0.9},  // supply term: 2+1+0.45-0.5 = 2.95
      {0.0, 1.0, 0.0, 1.0},
  };
  Harness s(specs, 5);
  const PricingResult r = s.Run(TestConfig());
  EXPECT_NEAR(r.sums.sum_supply, 2.95, 1e-6);
}

TEST(Pricing, AggregatorIsABuyer) {
  const std::vector<AgentSpec> specs = {
      {2.0, 0.1}, {1.5, 0.1}, {0.0, 1.0}, {0.0, 2.0}};
  Harness s(specs, 6);
  const PricingResult r = s.Run(TestConfig());
  EXPECT_GE(r.hb_buyer_index, 2u);
}

TEST(Pricing, PriceIdenticalAcrossProtocolRandomness) {
  const std::vector<AgentSpec> specs = {
      {0.9, 0.1, 0.0, 0.9}, {1.2, 0.3, 0.0, 1.1}, {0.0, 1.0}, {0.0, 1.2}};
  double first = -1;
  for (uint64_t seed = 10; seed < 16; ++seed) {
    Harness s(specs, seed);
    const double p = s.Run(TestConfig()).price;
    if (first < 0) {
      first = p;
    } else {
      EXPECT_DOUBLE_EQ(p, first) << seed;
    }
  }
}

TEST(Pricing, LargerKeySizeSameResult) {
  const std::vector<AgentSpec> specs = {
      {0.9, 0.1, 0.0, 0.9}, {0.0, 1.0}};
  Harness s128(specs, 20);
  PemConfig cfg = TestConfig();
  const double p128 = s128.Run(cfg).price;
  Harness s512(specs, 21);
  cfg.key_bits = 512;
  const double p512 = s512.Run(cfg).price;
  EXPECT_NEAR(p128, p512, 1e-12);
}

TEST(PricingDeath, NoSellersAborts) {
  const std::vector<AgentSpec> specs = {{0.0, 1.0}, {0.0, 2.0}};
  Harness s(specs, 30);
  PemConfig cfg = TestConfig();
  ProtocolContext ctx{s.eps, s.rng, cfg};
  EXPECT_DEATH(
      (void)RunPrivatePricing(ctx, s.parties, FormCoalitions(s.parties)),
      "sellers");
}

}  // namespace
}  // namespace pem::protocol
