#include "protocol/party.h"

#include <gtest/gtest.h>

namespace pem::protocol {
namespace {

grid::AgentParams Params(double k = 1.0, double eps = 0.9) {
  grid::AgentParams p;
  p.preference_k = k;
  p.battery_epsilon = eps;
  return p;
}

grid::WindowState State(double g, double l, double b = 0.0) {
  grid::WindowState s;
  s.generation_kwh = g;
  s.load_kwh = l;
  s.battery_kwh = b;
  return s;
}

TEST(Party, BeginWindowQuantizesNetEnergy) {
  Party p(0, Params());
  crypto::DeterministicRng rng(1);
  p.BeginWindow(State(2.0, 0.5), 1 << 20, rng);
  EXPECT_EQ(p.net_raw(), 1'500'000);
  EXPECT_DOUBLE_EQ(p.net_kwh(), 1.5);
  EXPECT_EQ(p.role(), grid::Role::kSeller);
}

TEST(Party, RolesFollowNetSign) {
  Party p(0, Params());
  crypto::DeterministicRng rng(2);
  p.BeginWindow(State(0.0, 1.0), 1 << 20, rng);
  EXPECT_EQ(p.role(), grid::Role::kBuyer);
  p.BeginWindow(State(1.0, 1.0), 1 << 20, rng);
  EXPECT_EQ(p.role(), grid::Role::kOffMarket);
}

TEST(Party, BatteryEntersNetEnergy) {
  Party p(0, Params());
  crypto::DeterministicRng rng(3);
  p.BeginWindow(State(2.0, 0.5, 1.0), 1 << 20, rng);  // sn = 0.5
  EXPECT_DOUBLE_EQ(p.net_kwh(), 0.5);
}

TEST(Party, NonceWithinBound) {
  Party p(0, Params());
  crypto::DeterministicRng rng(4);
  for (int i = 0; i < 50; ++i) {
    p.BeginWindow(State(1.0, 0.5), 1000, rng);
    EXPECT_GE(p.nonce(), 0);
    EXPECT_LT(p.nonce(), 1000);
  }
}

TEST(Party, NoncesVaryAcrossWindows) {
  Party p(0, Params());
  crypto::DeterministicRng rng(5);
  p.BeginWindow(State(1.0, 0.5), int64_t{1} << 40, rng);
  const int64_t n1 = p.nonce();
  p.BeginWindow(State(1.0, 0.5), int64_t{1} << 40, rng);
  EXPECT_NE(p.nonce(), n1);
}

TEST(Party, PreferenceRawIsFixedPoint) {
  Party p(0, Params(1.25));
  EXPECT_EQ(p.PreferenceRaw(), 1'250'000);
}

TEST(Party, SupplyTermRawMatchesEquation13Denominator) {
  Party p(0, Params(1.0, 0.9));
  crypto::DeterministicRng rng(6);
  p.BeginWindow(State(2.0, 0.5, 0.4), 1 << 20, rng);
  // g + 1 + eps*b - b = 2 + 1 + 0.36 - 0.4 = 2.96
  EXPECT_EQ(p.SupplyTermRaw(), 2'960'000);
}

TEST(Party, KeysAreLazyAndCached) {
  Party p(0, Params());
  EXPECT_FALSE(p.HasKeys());
  crypto::DeterministicRng rng(7);
  const auto& kp1 = p.EnsureKeys(128, rng);
  EXPECT_TRUE(p.HasKeys());
  const auto& kp2 = p.EnsureKeys(128, rng);
  EXPECT_EQ(kp1.pub.n(), kp2.pub.n());  // cached, not regenerated
}

TEST(Party, KeySizeChangeRegenerates) {
  Party p(0, Params());
  crypto::DeterministicRng rng(8);
  const crypto::BigInt n128 = p.EnsureKeys(128, rng).pub.n();
  const crypto::BigInt n256 = p.EnsureKeys(256, rng).pub.n();
  EXPECT_NE(n128, n256);
  EXPECT_EQ(p.public_key().key_bits(), 256);
}

TEST(PartyDeath, KeyAccessBeforeGenerationAborts) {
  Party p(0, Params());
  EXPECT_DEATH((void)p.public_key(), "no keys");
}

}  // namespace
}  // namespace pem::protocol
