#include "protocol/market_eval.h"

#include <gtest/gtest.h>

#include "net/bus.h"

namespace pem::protocol {
namespace {

PemConfig TestConfig() {
  PemConfig cfg;
  cfg.key_bits = 128;
  cfg.compare.group = crypto::ModpGroupId::kModp768;
  return cfg;
}

struct Harness {
  std::vector<Party> parties;
  net::MessageBus bus;
  std::vector<net::Endpoint> eps = bus.endpoints();
  crypto::DeterministicRng rng;

  Harness(const std::vector<double>& nets, uint64_t seed)
      : bus(static_cast<int>(nets.size())), rng(seed) {
    for (size_t i = 0; i < nets.size(); ++i) {
      parties.emplace_back(static_cast<net::AgentId>(i), grid::AgentParams{});
      grid::WindowState st;
      st.generation_kwh = nets[i] > 0 ? nets[i] : 0.0;
      st.load_kwh = nets[i] < 0 ? -nets[i] : 0.0;
      parties.back().BeginWindow(st, int64_t{1} << 30, rng);
    }
  }

  MarketEvalResult Run(const PemConfig& cfg) {
    ProtocolContext ctx{eps, rng, cfg};
    return RunPrivateMarketEvaluation(ctx, parties, FormCoalitions(parties));
  }
};

TEST(MarketEval, DetectsGeneralMarket) {
  Harness s({0.5, -1.0, -2.0}, 1);  // E_s = 0.5 < E_b = 3.0
  EXPECT_TRUE(s.Run(TestConfig()).general_market);
}

TEST(MarketEval, DetectsExtremeMarket) {
  Harness s({3.0, 1.0, -0.5}, 2);  // E_s = 4.0 >= E_b = 0.5
  EXPECT_FALSE(s.Run(TestConfig()).general_market);
}

TEST(MarketEval, EqualSupplyAndDemandIsExtreme) {
  Harness s({1.0, -1.0}, 3);  // E_s == E_b: paper defines >= as extreme
  EXPECT_FALSE(s.Run(TestConfig()).general_market);
}

TEST(MarketEval, TinyMarginDetected) {
  // One fixed-point unit (1e-6 kWh) separates the coalitions.
  Harness general({1.0, -1.000001}, 4);
  EXPECT_TRUE(general.Run(TestConfig()).general_market);
  Harness extreme({1.000001, -1.0}, 5);
  EXPECT_FALSE(extreme.Run(TestConfig()).general_market);
}

TEST(MarketEval, ChosenAgentsComeFromCorrectCoalitions) {
  Harness s({2.0, 1.5, -1.0, -3.0, -0.5}, 6);
  const MarketEvalResult r = s.Run(TestConfig());
  EXPECT_TRUE(r.hr1_seller_index == 0 || r.hr1_seller_index == 1);
  EXPECT_GE(r.hr2_buyer_index, 2u);
  EXPECT_LE(r.hr2_buyer_index, 4u);
}

TEST(MarketEval, ManyAgentsStillCorrect) {
  // 8 sellers x 0.3 = 2.4 supply, 12 buyers x 0.25 = 3.0 demand.
  std::vector<double> nets;
  for (int i = 0; i < 8; ++i) nets.push_back(0.3);
  for (int i = 0; i < 12; ++i) nets.push_back(-0.25);
  Harness s(nets, 7);
  EXPECT_TRUE(s.Run(TestConfig()).general_market);
}

TEST(MarketEval, ResultIndependentOfRandomChoices) {
  // Same market, different protocol randomness -> same verdict.
  for (uint64_t seed = 20; seed < 26; ++seed) {
    Harness s({0.4, 0.7, -0.6, -0.9}, seed);
    EXPECT_TRUE(s.Run(TestConfig()).general_market) << seed;
  }
}

TEST(MarketEval, GeneratesSubstantialTraffic) {
  Harness s({1.0, -0.5, -0.6}, 8);
  (void)s.Run(TestConfig());
  // Two aggregation rings + GC comparison + broadcasts.
  EXPECT_GT(s.bus.total_bytes(), 10'000u);
}

TEST(MarketEvalDeath, EmptyCoalitionAborts) {
  Harness s({1.0, 2.0}, 9);  // no buyers
  PemConfig cfg = TestConfig();
  ProtocolContext ctx{s.eps, s.rng, cfg};
  EXPECT_DEATH(
      (void)RunPrivateMarketEvaluation(ctx, s.parties,
                                       FormCoalitions(s.parties)),
      "both coalitions");
}

}  // namespace
}  // namespace pem::protocol
