#include "protocol/coin_flip.h"

#include <gtest/gtest.h>

#include "net/bus.h"

#include <set>

#include "market/clearing.h"
#include "protocol/pem_protocol.h"

namespace pem::protocol {
namespace {

struct Harness {
  std::vector<Party> parties;
  net::MessageBus bus;
  std::vector<net::Endpoint> eps = bus.endpoints();
  crypto::DeterministicRng rng;
  PemConfig cfg;

  Harness(int n, uint64_t seed) : bus(n), rng(seed) {
    cfg.key_bits = 128;
    for (int i = 0; i < n; ++i) {
      parties.emplace_back(i, grid::AgentParams{});
      grid::WindowState st;
      st.generation_kwh = (i % 2 == 0) ? 1.0 : 0.0;
      st.load_kwh = (i % 2 == 0) ? 0.0 : 1.0;
      parties.back().BeginWindow(st, int64_t{1} << 30, rng);
    }
  }

  ProtocolContext Ctx() { return ProtocolContext{eps, rng, cfg}; }
};

std::vector<size_t> All(int n) {
  std::vector<size_t> out(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out[static_cast<size_t>(i)] = static_cast<size_t>(i);
  return out;
}

TEST(CoinFlip, DrawsAreDeterministicPerSeed) {
  Harness a(5, 42), b(5, 42);
  ProtocolContext ca = a.Ctx(), cb = b.Ctx();
  EXPECT_EQ(JointRandomU64(ca, a.parties, All(5)),
            JointRandomU64(cb, b.parties, All(5)));
}

TEST(CoinFlip, DifferentSeedsDiverge) {
  Harness a(5, 1), b(5, 2);
  ProtocolContext ca = a.Ctx(), cb = b.Ctx();
  EXPECT_NE(JointRandomU64(ca, a.parties, All(5)),
            JointRandomU64(cb, b.parties, All(5)));
}

TEST(CoinFlip, SingleParticipantSkipsMessaging) {
  Harness h(3, 3);
  ProtocolContext ctx = h.Ctx();
  const std::vector<size_t> solo = {1};
  (void)JointRandomU64(ctx, h.parties, solo);
  EXPECT_EQ(h.bus.total_messages(), 0u);
}

TEST(CoinFlip, QuadraticMessagePattern) {
  const int m = 4;
  Harness h(m, 4);
  ProtocolContext ctx = h.Ctx();
  (void)JointRandomU64(ctx, h.parties, All(m));
  // commit + reveal, each m*(m-1) pairwise messages.
  EXPECT_EQ(h.bus.total_messages(),
            static_cast<uint64_t>(2 * m * (m - 1)));
  // Inboxes fully drained (everything verified).
  for (int i = 0; i < m; ++i) EXPECT_FALSE(h.bus.HasMessage(i));
}

TEST(CoinFlip, OutputLooksUniformAcrossSeeds) {
  // XOR of everyone's shares mod 4: all residues should appear.
  std::set<uint64_t> seen;
  for (uint64_t seed = 0; seed < 24; ++seed) {
    Harness h(3, 100 + seed);
    ProtocolContext ctx = h.Ctx();
    seen.insert(JointRandomU64(ctx, h.parties, All(3)) % 4);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(SelectAgent, RespectsCandidateSet) {
  Harness h(6, 5);
  h.cfg.collusion_resistant_selection = true;
  ProtocolContext ctx = h.Ctx();
  const std::vector<size_t> candidates = {1, 3, 5};
  for (int i = 0; i < 10; ++i) {
    const size_t pick = SelectAgent(ctx, h.parties, candidates);
    EXPECT_TRUE(pick == 1 || pick == 3 || pick == 5) << pick;
  }
}

TEST(SelectAgent, DisabledModeSendsNothing) {
  Harness h(6, 6);
  h.cfg.collusion_resistant_selection = false;
  ProtocolContext ctx = h.Ctx();
  (void)SelectAgent(ctx, h.parties, All(6));
  EXPECT_EQ(h.bus.total_messages(), 0u);
}

TEST(SelectAgent, EnabledModeExchangesCommitments) {
  Harness h(4, 7);
  h.cfg.collusion_resistant_selection = true;
  ProtocolContext ctx = h.Ctx();
  (void)SelectAgent(ctx, h.parties, All(4));
  EXPECT_GT(h.bus.total_messages(), 0u);
}

// Full-window integration: collusion-resistant selection must not
// change the market outcome, only the transcript.
TEST(SelectAgent, FullWindowOutcomeUnchanged) {
  auto run = [](bool resistant, uint64_t seed) {
    Harness h(6, seed);
    h.cfg.collusion_resistant_selection = resistant;
    ProtocolContext ctx = h.Ctx();
    return RunPemWindow(ctx, h.parties);
  };
  const PemWindowResult plain = run(false, 9);
  const PemWindowResult resistant = run(true, 9);
  EXPECT_EQ(resistant.type, plain.type);
  EXPECT_NEAR(resistant.price, plain.price, 1e-9);
  EXPECT_NEAR(resistant.buyer_total_cost, plain.buyer_total_cost, 1e-6);
  EXPECT_GT(resistant.bus_bytes, plain.bus_bytes);  // coin-flip traffic
}

}  // namespace
}  // namespace pem::protocol
