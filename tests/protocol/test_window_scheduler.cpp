// WindowScheduler: the persistent compute team and the batch planner.
//
// The serial-vs-batched transcript-parity rows prove the end-to-end
// equivalence claim; this suite covers the scheduler machinery itself:
// in-flight bounds, the pem::ParallelFor contract over the persistent
// team (results, strides, degenerate sizes), exception delivery that
// leaves the team reusable (one window's failure must not corrupt its
// in-flight siblings), and the windows_in_flight = 1 degeneration to
// today's serial loop.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "protocol/window_scheduler.h"

namespace pem::protocol {
namespace {

TEST(WindowScheduler, PlanBatchesGroupsConsecutively) {
  const std::vector<int> sampled = {0, 2, 4, 6, 8, 10, 12, 14};
  const auto batches = WindowScheduler::PlanBatches(sampled, 3);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0], (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(batches[1], (std::vector<int>{6, 8, 10}));
  EXPECT_EQ(batches[2], (std::vector<int>{12, 14}));
}

TEST(WindowScheduler, PlanBatchesDegenerateWidthOneIsTodaysLoop) {
  // windows_in_flight = 1: one window per batch, in order — exactly
  // the serial loop's schedule.
  const std::vector<int> sampled = {3, 5, 9};
  const auto batches = WindowScheduler::PlanBatches(sampled, 1);
  ASSERT_EQ(batches.size(), 3u);
  for (size_t i = 0; i < sampled.size(); ++i) {
    EXPECT_EQ(batches[i], std::vector<int>{sampled[i]});
  }
}

TEST(WindowScheduler, PlanBatchesEdges) {
  EXPECT_TRUE(WindowScheduler::PlanBatches({}, 4).empty());
  const std::vector<int> sampled = {1, 2};
  // Width beyond the sample count: one batch, order preserved.
  const auto batches = WindowScheduler::PlanBatches(sampled, 16);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0], sampled);
}

TEST(WindowSchedulerDeath, InFlightBoundsEnforced) {
  EXPECT_DEATH((WindowScheduler({0, 2})), "windows_in_flight");
  EXPECT_DEATH((void)WindowScheduler::PlanBatches({{1}}, 0),
               "windows_in_flight");
}

TEST(WindowScheduler, FusedOnlyWhenBatchedAndParallel) {
  EXPECT_FALSE(WindowScheduler({1, 8}).fused());   // no batching
  EXPECT_FALSE(WindowScheduler({8, 1}).fused());   // no parallel compute
  EXPECT_FALSE(WindowScheduler({8, 0}).fused());   // threads clamped to 1
  EXPECT_TRUE(WindowScheduler({2, 2}).fused());
}

TEST(WindowScheduler, ParallelForComputesEveryIndexOnce) {
  WindowScheduler sched({4, 4});
  ASSERT_TRUE(sched.fused());
  std::vector<int> hits(1000, 0);
  sched.ParallelFor(0, hits.size(),
                    [&](size_t i) { hits[i] += static_cast<int>(i); });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], static_cast<int>(i));
  }
}

TEST(WindowScheduler, ParallelForHandlesDegenerateRanges) {
  WindowScheduler sched({2, 3});
  std::atomic<int> calls{0};
  sched.ParallelFor(5, 5, [&](size_t) { ++calls; });  // empty
  EXPECT_EQ(calls.load(), 0);
  sched.ParallelFor(7, 8, [&](size_t i) {  // single index: runs inline
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
  // Fewer items than workers: every index still runs exactly once.
  std::vector<int> hits(2, 0);
  sched.ParallelFor(0, hits.size(), [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);
}

TEST(WindowScheduler, ManySequentialJobsReuseTheTeam) {
  // The whole point of the persistent team: many fan-outs, one
  // spawn/join.  Sizes vary to exercise the generation handshake.
  WindowScheduler sched({4, 4});
  for (int round = 0; round < 50; ++round) {
    const size_t n = static_cast<size_t>(1 + (round * 37) % 97);
    std::vector<uint64_t> out(n, 0);
    sched.ParallelFor(0, n, [&](size_t i) { out[i] = i * i; });
    uint64_t sum = 0;
    for (const uint64_t v : out) sum += v;
    ASSERT_EQ(sum, (n - 1) * n * (2 * n - 1) / 6);
  }
}

TEST(WindowScheduler, ExceptionRethrownAndTeamSurvives) {
  // One in-flight window's compute throwing must reach its caller as
  // the first captured exception — and must NOT corrupt the team: the
  // sibling windows' subsequent fan-outs run to completion on the same
  // workers.
  WindowScheduler sched({2, 4});
  EXPECT_THROW(
      sched.ParallelFor(0, 100,
                        [&](size_t i) {
                          if (i == 37) throw std::runtime_error("window 37");
                        }),
      std::runtime_error);
  std::vector<int> hits(100, 0);
  sched.ParallelFor(0, hits.size(), [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
  // And again: repeated failures keep being survivable.
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(sched.ParallelFor(0, 8,
                                   [&](size_t) {
                                     throw std::runtime_error("every index");
                                   }),
                 std::runtime_error);
    std::atomic<int> ok{0};
    sched.ParallelFor(0, 8, [&](size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 8);
  }
}

TEST(WindowScheduler, NonFusedParallelForRunsSerially) {
  // Degenerate configuration: no team, the loop runs inline on the
  // caller (the pre-batching engine exactly).
  WindowScheduler sched({1, 8});
  const auto tid = std::this_thread::get_id();
  std::vector<int> hits(16, 0);
  sched.ParallelFor(0, hits.size(), [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), tid);
    ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 16);
}

}  // namespace
}  // namespace pem::protocol
