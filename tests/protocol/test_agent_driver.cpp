// AgentDriver: one agent's side of a window in a forked process.
//
// The transcript-parity suite proves the four-backend equivalence over
// full windows and days; this suite covers the driver machinery itself:
// the window-report wire codec, the command loop contract, and a
// protocol window executed by forked per-agent drivers whose merged
// report must equal the serial in-process run — with the window's bytes
// measured from real socketpair traffic by the parent router.
#include <gtest/gtest.h>

#include <vector>

#include "crypto/rng.h"
#include "net/bus.h"
#include "net/process_transport.h"
#include "protocol/agent_driver.h"

namespace pem::protocol {
namespace {

market::AgentWindowInput Agent(double g, double l, double k = 1.0) {
  market::AgentWindowInput in;
  in.params.preference_k = k;
  in.params.battery_epsilon = 0.9;
  in.state.generation_kwh = g;
  in.state.load_kwh = l;
  return in;
}

const std::vector<market::AgentWindowInput> kMarket = {
    Agent(1.4, 0.2, 0.9), Agent(0.0, 1.1), Agent(0.2, 0.7),
    Agent(1.9, 0.5, 1.1),
};

std::vector<Party> MakeParties(const PemConfig& cfg, crypto::Rng& rng) {
  std::vector<Party> parties;
  for (size_t i = 0; i < kMarket.size(); ++i) {
    parties.emplace_back(static_cast<net::AgentId>(i), kMarket[i].params);
    parties.back().BeginWindow(kMarket[i].state, cfg.nonce_bound, rng);
  }
  return parties;
}

TEST(AgentDriver, WindowReportCodecRoundTrips) {
  WindowReport report;
  report.window = 17;
  report.type = market::MarketType::kGeneral;
  report.price = 0.3125;
  report.supply_total = 2.5;
  report.demand_total = 1.75;
  report.buyer_total_cost = 0.55;
  report.grid_import_kwh = 0.25;
  report.grid_export_kwh = 1.0;
  report.num_sellers = 2;
  report.num_buyers = 2;
  report.trades = {{0, 1, 0.5, 0.15}, {3, 2, 0.25, 0.08}};
  report.runtime_seconds = 0.0625;
  report.bus_bytes = 4242;
  report.rng_cursor = 987654;
  report.self_stats = {100, 200, 3, 4};

  const WindowReport out = DecodeWindowReport(EncodeWindowReport(report));
  EXPECT_EQ(out.window, 17);
  EXPECT_EQ(out.type, report.type);
  EXPECT_DOUBLE_EQ(out.price, report.price);
  EXPECT_DOUBLE_EQ(out.supply_total, report.supply_total);
  EXPECT_DOUBLE_EQ(out.demand_total, report.demand_total);
  EXPECT_DOUBLE_EQ(out.buyer_total_cost, report.buyer_total_cost);
  EXPECT_DOUBLE_EQ(out.grid_import_kwh, report.grid_import_kwh);
  EXPECT_DOUBLE_EQ(out.grid_export_kwh, report.grid_export_kwh);
  EXPECT_EQ(out.num_sellers, 2);
  EXPECT_EQ(out.num_buyers, 2);
  ASSERT_EQ(out.trades.size(), 2u);
  EXPECT_EQ(out.trades[1].seller_index, 3u);
  EXPECT_DOUBLE_EQ(out.trades[1].payment, 0.08);
  EXPECT_DOUBLE_EQ(out.runtime_seconds, 0.0625);
  EXPECT_EQ(out.bus_bytes, 4242u);
  EXPECT_EQ(out.rng_cursor, 987654u);
  EXPECT_TRUE(out.self_stats == report.self_stats);
}

TEST(AgentDriver, ForkedWindowMatchesSerialWindow) {
  constexpr uint64_t kSeed = 71;
  PemConfig cfg;
  cfg.key_bits = 128;

  // Serial in-process reference.
  crypto::DeterministicRng serial_rng(kSeed);
  std::vector<Party> serial_parties = MakeParties(cfg, serial_rng);
  net::MessageBus serial_bus(static_cast<int>(kMarket.size()));
  std::vector<net::Endpoint> serial_eps = serial_bus.endpoints();
  ProtocolContext serial_ctx{serial_eps, serial_rng, cfg, nullptr,
                             net::ExecutionPolicy::Serial()};
  const PemWindowResult serial = RunPemWindow(serial_ctx, serial_parties);

  // The same window, one forked process per agent.  Parties are built
  // inside each child (fork-copied config + rng snapshot), exactly as
  // RunSimulation's children rebuild their window state.
  crypto::DeterministicRng rng(kSeed);
  net::ProcessTransport::ChildMain child_main =
      [&cfg, &rng](net::AgentId self, net::Transport& wire,
                   net::ControlChannel& ctl) -> int {
    std::vector<net::Endpoint> eps = wire.endpoints();
    ProtocolContext ctx{eps, rng, cfg, nullptr,
                        net::ExecutionPolicy::Process()};
    std::vector<Party> parties;
    for (size_t i = 0; i < kMarket.size(); ++i) {
      parties.emplace_back(static_cast<net::AgentId>(i), kMarket[i].params);
    }
    AgentDriver::Callbacks callbacks;
    callbacks.begin_window = [&](int window) {
      PEM_CHECK(window == 0, "test schedules exactly one window");
      // Same RNG draw order as the serial reference's MakeParties.
      for (size_t i = 0; i < kMarket.size(); ++i) {
        parties[i].BeginWindow(kMarket[i].state, cfg.nonce_bound, rng);
      }
    };
    AgentDriver driver(self, ctx, parties, callbacks);
    return driver.Serve(ctl) == 1 ? 0 : 1;
  };
  net::ProcessTransport transport(static_cast<int>(kMarket.size()),
                                  child_main);
  std::vector<net::TrafficStats> before;
  for (net::AgentId a = 0; a < transport.num_agents(); ++a) {
    before.push_back(transport.stats(a));
  }
  const std::vector<uint8_t> window_zero = {0, 0, 0, 0};
  transport.CommandAll(net::kCtlCmdRun, window_zero);
  const WindowReport report = CollectWindowReports(transport, before, 0);
  transport.Shutdown();

  EXPECT_EQ(report.window, 0);
  EXPECT_EQ(report.type, serial.type);
  EXPECT_DOUBLE_EQ(report.price, serial.price);
  EXPECT_EQ(report.bus_bytes, serial.bus_bytes);
  EXPECT_EQ(report.rng_cursor, serial.rng_cursor);
  // The report's bytes were cross-checked against the router's literal
  // socket ledger inside CollectWindowReports; check the totals too.
  EXPECT_EQ(transport.total_bytes(), serial.bus_bytes);
  ASSERT_EQ(report.trades.size(), serial.trades.size());
  for (size_t i = 0; i < serial.trades.size(); ++i) {
    EXPECT_EQ(report.trades[i].seller_index, serial.trades[i].seller_index);
    EXPECT_EQ(report.trades[i].buyer_index, serial.trades[i].buyer_index);
    EXPECT_DOUBLE_EQ(report.trades[i].energy_kwh,
                     serial.trades[i].energy_kwh);
    EXPECT_DOUBLE_EQ(report.trades[i].payment, serial.trades[i].payment);
  }
}

}  // namespace
}  // namespace pem::protocol
