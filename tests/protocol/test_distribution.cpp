#include "protocol/distribution.h"

#include <gtest/gtest.h>

#include "net/bus.h"

#include <numeric>

namespace pem::protocol {
namespace {

PemConfig TestConfig() {
  PemConfig cfg;
  cfg.key_bits = 128;
  return cfg;
}

struct Harness {
  std::vector<Party> parties;
  net::MessageBus bus;
  std::vector<net::Endpoint> eps = bus.endpoints();
  crypto::DeterministicRng rng;

  Harness(const std::vector<double>& nets, uint64_t seed)
      : bus(static_cast<int>(nets.size())), rng(seed) {
    for (size_t i = 0; i < nets.size(); ++i) {
      parties.emplace_back(static_cast<net::AgentId>(i), grid::AgentParams{});
      grid::WindowState st;
      st.generation_kwh = nets[i] > 0 ? nets[i] : 0.0;
      st.load_kwh = nets[i] < 0 ? -nets[i] : 0.0;
      parties.back().BeginWindow(st, int64_t{1} << 30, rng);
    }
  }

  DistributionResult Run(bool general, double price, const PemConfig& cfg) {
    ProtocolContext ctx{eps, rng, cfg};
    return RunPrivateDistribution(ctx, parties, FormCoalitions(parties),
                                  general, price);
  }
};

TEST(Distribution, GeneralMarketProportionalToDemand) {
  // Sellers: +1.0; buyers: -1.5 and -0.5 (E_b = 2).
  Harness s({1.0, -1.5, -0.5}, 1);
  const DistributionResult r = s.Run(true, 1.0, TestConfig());
  ASSERT_EQ(r.trades.size(), 2u);
  // e_ij = sn_i * |sn_j| / E_b.
  for (const Trade& t : r.trades) {
    if (t.buyer_index == 1) {
      EXPECT_NEAR(t.energy_kwh, 1.0 * 1.5 / 2.0, 1e-4);
    } else {
      EXPECT_NEAR(t.energy_kwh, 1.0 * 0.5 / 2.0, 1e-4);
    }
    EXPECT_NEAR(t.payment, 1.0 * t.energy_kwh, 1e-9);
  }
}

TEST(Distribution, GeneralMarketSellsAllSupply) {
  Harness s({0.7, 0.3, -1.1, -0.9, -2.0}, 2);
  const DistributionResult r = s.Run(true, 0.95, TestConfig());
  double sold0 = 0, sold1 = 0;
  for (const Trade& t : r.trades) {
    if (t.seller_index == 0) sold0 += t.energy_kwh;
    if (t.seller_index == 1) sold1 += t.energy_kwh;
  }
  EXPECT_NEAR(sold0, 0.7, 1e-4);
  EXPECT_NEAR(sold1, 0.3, 1e-4);
}

TEST(Distribution, ExtremeMarketProportionalToSupply) {
  // Sellers: +3.0 and +1.0 (E_s = 4); buyer: -2.0.
  Harness s({3.0, 1.0, -2.0}, 3);
  const DistributionResult r = s.Run(false, 0.9, TestConfig());
  ASSERT_EQ(r.trades.size(), 2u);
  for (const Trade& t : r.trades) {
    if (t.seller_index == 0) {
      EXPECT_NEAR(t.energy_kwh, 2.0 * 3.0 / 4.0, 1e-4);
    } else {
      EXPECT_NEAR(t.energy_kwh, 2.0 * 1.0 / 4.0, 1e-4);
    }
    EXPECT_NEAR(t.payment, 0.9 * t.energy_kwh, 1e-9);
  }
}

TEST(Distribution, ExtremeMarketCoversAllDemand) {
  Harness s({2.0, 2.5, -0.8, -1.2}, 4);
  const DistributionResult r = s.Run(false, 0.9, TestConfig());
  double bought2 = 0, bought3 = 0;
  for (const Trade& t : r.trades) {
    if (t.buyer_index == 2) bought2 += t.energy_kwh;
    if (t.buyer_index == 3) bought3 += t.energy_kwh;
  }
  EXPECT_NEAR(bought2, 0.8, 1e-4);
  EXPECT_NEAR(bought3, 1.2, 1e-4);
}

TEST(Distribution, TradeCountIsPairwise) {
  Harness s({1.0, 0.5, 0.2, -1.0, -2.0, -0.5, -1.5}, 5);  // 3 sellers, 4 buyers
  const DistributionResult r = s.Run(true, 1.0, TestConfig());
  EXPECT_EQ(r.trades.size(), 12u);
}

TEST(Distribution, PaymentsMatchPriceTimesEnergy) {
  Harness s({0.6, -0.5, -0.7}, 6);
  const double price = 1.07;
  const DistributionResult r = s.Run(true, price, TestConfig());
  for (const Trade& t : r.trades) {
    EXPECT_NEAR(t.payment, price * t.energy_kwh, 1e-12);
  }
}

TEST(Distribution, RatioPrecisionOnSkewedShares) {
  // Very uneven demands stress the K/share rounding.
  Harness s({1.0, -0.000123, -2.345678}, 7);
  const DistributionResult r = s.Run(true, 1.0, TestConfig());
  double total = 0;
  for (const Trade& t : r.trades) total += t.energy_kwh;
  EXPECT_NEAR(total, 1.0, 1e-4);
  for (const Trade& t : r.trades) {
    if (t.buyer_index == 1) {
      EXPECT_NEAR(t.energy_kwh, 1.0 * 0.000123 / 2.345801, 1e-7);
    }
  }
}

TEST(Distribution, AggregatorFromCorrectCoalition) {
  Harness general({1.0, 0.4, -2.0}, 8);
  EXPECT_LE(general.Run(true, 1.0, TestConfig()).aggregator_index, 1u);
  Harness extreme({3.0, 1.0, -2.0}, 9);
  EXPECT_EQ(extreme.Run(false, 0.9, TestConfig()).aggregator_index, 2u);
}

TEST(Distribution, QuadraticMessageComplexity) {
  Harness s({0.5, 0.5, -0.4, -0.4, -0.4}, 10);
  (void)s.Run(true, 1.0, TestConfig());
  // 2 sellers x 3 buyers x 2 messages (energy + payment) at minimum.
  EXPECT_GE(s.bus.total_messages(), 12u);
}

TEST(DistributionDeath, RequiresBothCoalitions) {
  Harness s({1.0, 2.0}, 11);
  PemConfig cfg = TestConfig();
  ProtocolContext ctx{s.eps, s.rng, cfg};
  EXPECT_DEATH((void)RunPrivateDistribution(ctx, s.parties,
                                            FormCoalitions(s.parties), true,
                                            1.0),
               "both coalitions");
}

TEST(DistributionDeath, NonPositivePriceAborts) {
  Harness s({1.0, -1.5}, 12);
  PemConfig cfg = TestConfig();
  ProtocolContext ctx{s.eps, s.rng, cfg};
  EXPECT_DEATH((void)RunPrivateDistribution(ctx, s.parties,
                                            FormCoalitions(s.parties), true,
                                            0.0),
               "price");
}

}  // namespace
}  // namespace pem::protocol
