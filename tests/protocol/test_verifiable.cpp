#include "protocol/verifiable.h"

#include <gtest/gtest.h>

namespace pem::protocol {
namespace {

crypto::PaillierKeyPair TestKeys() {
  crypto::DeterministicRng rng(1);
  return crypto::GeneratePaillierKeyPair(256, rng);
}

TEST(Verifiable, HonestContributionVerifies) {
  const crypto::PaillierKeyPair kp = TestKeys();
  crypto::DeterministicRng rng(2);
  const VerifiableResult r =
      MakeVerifiableContribution(kp.pub, 123456, rng);
  EXPECT_TRUE(VerifyContribution(kp.pub, r.contribution, r.witness));
  // The ciphertext really encrypts the blinded value.
  EXPECT_EQ(kp.priv.DecryptSigned(r.contribution.ciphertext), 123456);
}

TEST(Verifiable, NegativeBlindedValueSupported) {
  const crypto::PaillierKeyPair kp = TestKeys();
  crypto::DeterministicRng rng(3);
  const VerifiableResult r = MakeVerifiableContribution(kp.pub, -42, rng);
  EXPECT_TRUE(VerifyContribution(kp.pub, r.contribution, r.witness));
}

TEST(Verifiable, LyingAboutValueIsDetected) {
  const crypto::PaillierKeyPair kp = TestKeys();
  crypto::DeterministicRng rng(4);
  VerifiableResult r = MakeVerifiableContribution(kp.pub, 1000, rng);
  r.witness.blinded_value = 2000;  // claim a different input post hoc
  EXPECT_FALSE(VerifyContribution(kp.pub, r.contribution, r.witness));
}

TEST(Verifiable, SwappedCiphertextIsDetected) {
  const crypto::PaillierKeyPair kp = TestKeys();
  crypto::DeterministicRng rng(5);
  VerifiableResult r = MakeVerifiableContribution(kp.pub, 1000, rng);
  // Substitute a ciphertext of the right value but wrong randomness
  // (i.e., not the one committed to).
  r.contribution.ciphertext = kp.pub.EncryptSigned(1000, rng);
  EXPECT_FALSE(VerifyContribution(kp.pub, r.contribution, r.witness));
}

TEST(Verifiable, WrongRandomnessWitnessIsDetected) {
  const crypto::PaillierKeyPair kp = TestKeys();
  crypto::DeterministicRng rng(6);
  VerifiableResult r = MakeVerifiableContribution(kp.pub, 77, rng);
  r.witness.encryption_randomness =
      r.witness.encryption_randomness + crypto::BigInt(1);
  EXPECT_FALSE(VerifyContribution(kp.pub, r.contribution, r.witness));
}

TEST(Verifiable, TamperedBlinderIsDetected) {
  const crypto::PaillierKeyPair kp = TestKeys();
  crypto::DeterministicRng rng(7);
  VerifiableResult r = MakeVerifiableContribution(kp.pub, 77, rng);
  r.witness.blinder[0] ^= 1;
  EXPECT_FALSE(VerifyContribution(kp.pub, r.contribution, r.witness));
}

TEST(Verifiable, ZeroRandomnessWitnessRejectedSafely) {
  const crypto::PaillierKeyPair kp = TestKeys();
  crypto::DeterministicRng rng(8);
  VerifiableResult r = MakeVerifiableContribution(kp.pub, 5, rng);
  r.witness.encryption_randomness = crypto::BigInt(0);
  EXPECT_FALSE(VerifyContribution(kp.pub, r.contribution, r.witness));
}

TEST(Verifiable, AuditedValueIsBlindedNotRaw) {
  // The audit reveals value + nonce, never the raw net energy: with a
  // fresh uniform nonce the opened value is itself uniform.  Here we
  // just document the intended usage pattern end to end.
  const crypto::PaillierKeyPair kp = TestKeys();
  crypto::DeterministicRng rng(9);
  const int64_t net_energy = -1'500'000;           // secret
  const int64_t nonce = 987'654'321;               // secret, per window
  const int64_t blinded = -net_energy + nonce;     // what Protocol 2 sends
  const VerifiableResult r =
      MakeVerifiableContribution(kp.pub, blinded, rng);
  ASSERT_TRUE(VerifyContribution(kp.pub, r.contribution, r.witness));
  EXPECT_EQ(r.witness.blinded_value, blinded);
  EXPECT_NE(r.witness.blinded_value, -net_energy);
}

TEST(Verifiable, DistinctContributionsDistinctCommitments) {
  const crypto::PaillierKeyPair kp = TestKeys();
  crypto::DeterministicRng rng(10);
  const VerifiableResult a = MakeVerifiableContribution(kp.pub, 5, rng);
  const VerifiableResult b = MakeVerifiableContribution(kp.pub, 5, rng);
  EXPECT_NE(a.contribution.commitment, b.contribution.commitment);
  EXPECT_NE(a.contribution.ciphertext.value, b.contribution.ciphertext.value);
}

// --- audit-domain binding and verdict classification ------------------

TEST(Verifiable, AuditDomainBindsWindowAndAgent) {
  EXPECT_NE(AuditDomain(3, 1), AuditDomain(3, 2));
  EXPECT_NE(AuditDomain(3, 1), AuditDomain(4, 1));
  EXPECT_EQ(AuditDomain(3, 1), AuditDomain(3, 1));
}

TEST(Verifiable, JudgeAcceptsHonestContribution) {
  const crypto::PaillierKeyPair kp = TestKeys();
  crypto::DeterministicRng rng(11);
  const uint64_t domain = AuditDomain(5, 2);
  const VerifiableResult r =
      MakeVerifiableContribution(kp.pub, 321, rng, domain);
  EXPECT_EQ(JudgeContribution(kp.pub, r.contribution, r.witness, domain),
            ContributionVerdict::kHonest);
}

TEST(Verifiable, JudgeNamesReplayedDomain) {
  // A self-consistent contribution replayed from window 4 fails only
  // the domain binding when window 5's audit expects its own domain.
  const crypto::PaillierKeyPair kp = TestKeys();
  crypto::DeterministicRng rng(12);
  const VerifiableResult stale =
      MakeVerifiableContribution(kp.pub, 321, rng, AuditDomain(4, 2));
  EXPECT_EQ(JudgeContribution(kp.pub, stale.contribution, stale.witness,
                              AuditDomain(5, 2)),
            ContributionVerdict::kReplayedDomain);
}

TEST(Verifiable, JudgeNamesCommitmentMismatch) {
  const crypto::PaillierKeyPair kp = TestKeys();
  crypto::DeterministicRng rng(13);
  const uint64_t domain = AuditDomain(5, 2);
  VerifiableResult r = MakeVerifiableContribution(kp.pub, 321, rng, domain);
  r.contribution.commitment.digest.bytes[0] ^= 0x01;
  EXPECT_EQ(JudgeContribution(kp.pub, r.contribution, r.witness, domain),
            ContributionVerdict::kCommitmentMismatch);
}

TEST(Verifiable, JudgeNamesMisEncryption) {
  // Ciphertext encrypts value+1 under the committed randomness: the
  // opening succeeds, the re-encryption check convicts.
  const crypto::PaillierKeyPair kp = TestKeys();
  crypto::DeterministicRng rng(14);
  const uint64_t domain = AuditDomain(5, 2);
  VerifiableResult r = MakeVerifiableContribution(kp.pub, 321, rng, domain);
  r.contribution.ciphertext = kp.pub.EncryptWithRandomness(
      kp.pub.EncodeSigned(322), r.witness.encryption_randomness);
  EXPECT_EQ(JudgeContribution(kp.pub, r.contribution, r.witness, domain),
            ContributionVerdict::kMisEncrypted);
}

TEST(Verifiable, JudgeChecksCommitmentBeforeEncryption) {
  // Both the commitment and the ciphertext are bad: the verdict names
  // the commitment — fixed check order keeps every replica's fault
  // detail identical.
  const crypto::PaillierKeyPair kp = TestKeys();
  crypto::DeterministicRng rng(15);
  const uint64_t domain = AuditDomain(5, 2);
  VerifiableResult r = MakeVerifiableContribution(kp.pub, 321, rng, domain);
  r.contribution.commitment.digest.bytes[0] ^= 0x01;
  r.contribution.ciphertext = kp.pub.EncryptWithRandomness(
      kp.pub.EncodeSigned(322), r.witness.encryption_randomness);
  EXPECT_EQ(JudgeContribution(kp.pub, r.contribution, r.witness, domain),
            ContributionVerdict::kCommitmentMismatch);
}

}  // namespace
}  // namespace pem::protocol
