#include "protocol/key_directory.h"

#include <gtest/gtest.h>

namespace pem::protocol {
namespace {

crypto::PaillierPublicKey MakeKey(uint64_t seed) {
  crypto::DeterministicRng rng(seed);
  return crypto::GeneratePaillierKeyPair(128, rng).pub;
}

TEST(KeyDirectory, RegisterAndLookup) {
  KeyDirectory dir;
  const crypto::PaillierPublicKey key = MakeKey(1);
  ASSERT_TRUE(dir.Register(3, key).ok());
  ASSERT_TRUE(dir.Has(3));
  const Result<crypto::PaillierPublicKey> found = dir.Lookup(3);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().n(), key.n());
}

TEST(KeyDirectory, LookupUnknownAgentFails) {
  KeyDirectory dir;
  const Result<crypto::PaillierPublicKey> r = dir.Lookup(9);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(dir.Has(9));
}

TEST(KeyDirectory, ReRegisteringSameKeyIsIdempotent) {
  KeyDirectory dir;
  const crypto::PaillierPublicKey key = MakeKey(2);
  EXPECT_TRUE(dir.Register(1, key).ok());
  EXPECT_TRUE(dir.Register(1, key).ok());
  EXPECT_EQ(dir.size(), 1u);
}

TEST(KeyDirectory, EquivocationIsRejected) {
  KeyDirectory dir;
  ASSERT_TRUE(dir.Register(1, MakeKey(3)).ok());
  const Status s = dir.Register(1, MakeKey(4));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kProtocolViolation);
  // The original key survives.
  EXPECT_EQ(dir.Lookup(1).value().n(), MakeKey(3).n());
}

// --- membership churn: epochs, retirement, re-keying ------------------

TEST(KeyDirectory, RekeyAcrossEpochIsSupersession) {
  KeyDirectory dir;
  ASSERT_TRUE(dir.Register(1, MakeKey(5)).ok());
  dir.AdvanceEpoch();
  // A different key announced in a LATER epoch is a legitimate re-key
  // (the agent left and rejoined), not equivocation.
  ASSERT_TRUE(dir.Register(1, MakeKey(6)).ok());
  EXPECT_EQ(dir.Lookup(1).value().n(), MakeKey(6).n());
  EXPECT_EQ(dir.size(), 1u);
}

TEST(KeyDirectory, EquivocationStillRejectedWithinNewEpoch) {
  KeyDirectory dir;
  dir.AdvanceEpoch();
  ASSERT_TRUE(dir.Register(2, MakeKey(7)).ok());
  const Status s = dir.Register(2, MakeKey(8));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kProtocolViolation);
}

TEST(KeyDirectory, ReRegisteringSameKeyRefreshesEpochBinding) {
  KeyDirectory dir;
  ASSERT_TRUE(dir.Register(3, MakeKey(9)).ok());
  dir.AdvanceEpoch();
  // Same key re-announced in the new epoch: idempotent, and the
  // first-write-wins window re-arms — a DIFFERENT key in this same
  // epoch is now equivocation again.
  ASSERT_TRUE(dir.Register(3, MakeKey(9)).ok());
  EXPECT_FALSE(dir.Register(3, MakeKey(10)).ok());
}

TEST(KeyDirectory, RetireDropsBindingAndIsIdempotent) {
  KeyDirectory dir;
  ASSERT_TRUE(dir.Register(4, MakeKey(11)).ok());
  dir.Retire(4);
  EXPECT_FALSE(dir.Has(4));
  EXPECT_EQ(dir.size(), 0u);
  dir.Retire(4);  // idempotent
  // A retired agent may rejoin with a fresh key in the SAME epoch:
  // its old binding is gone, so there is nothing to equivocate with.
  ASSERT_TRUE(dir.Register(4, MakeKey(12)).ok());
  EXPECT_EQ(dir.Lookup(4).value().n(), MakeKey(12).n());
}

TEST(KeyDirectory, EpochCounterAdvances) {
  KeyDirectory dir;
  EXPECT_EQ(dir.epoch(), 0u);
  dir.AdvanceEpoch();
  dir.AdvanceEpoch();
  EXPECT_EQ(dir.epoch(), 2u);
}

TEST(KeyDirectory, ManyAgentsIndependent) {
  KeyDirectory dir;
  for (int a = 0; a < 10; ++a) {
    ASSERT_TRUE(dir.Register(a, MakeKey(100 + static_cast<uint64_t>(a))).ok());
  }
  EXPECT_EQ(dir.size(), 10u);
  for (int a = 0; a < 10; ++a) {
    EXPECT_EQ(dir.Lookup(a).value().n(),
              MakeKey(100 + static_cast<uint64_t>(a)).n());
  }
}

}  // namespace
}  // namespace pem::protocol
