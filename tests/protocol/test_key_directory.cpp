#include "protocol/key_directory.h"

#include <gtest/gtest.h>

namespace pem::protocol {
namespace {

crypto::PaillierPublicKey MakeKey(uint64_t seed) {
  crypto::DeterministicRng rng(seed);
  return crypto::GeneratePaillierKeyPair(128, rng).pub;
}

TEST(KeyDirectory, RegisterAndLookup) {
  KeyDirectory dir;
  const crypto::PaillierPublicKey key = MakeKey(1);
  ASSERT_TRUE(dir.Register(3, key).ok());
  ASSERT_TRUE(dir.Has(3));
  const Result<crypto::PaillierPublicKey> found = dir.Lookup(3);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().n(), key.n());
}

TEST(KeyDirectory, LookupUnknownAgentFails) {
  KeyDirectory dir;
  const Result<crypto::PaillierPublicKey> r = dir.Lookup(9);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(dir.Has(9));
}

TEST(KeyDirectory, ReRegisteringSameKeyIsIdempotent) {
  KeyDirectory dir;
  const crypto::PaillierPublicKey key = MakeKey(2);
  EXPECT_TRUE(dir.Register(1, key).ok());
  EXPECT_TRUE(dir.Register(1, key).ok());
  EXPECT_EQ(dir.size(), 1u);
}

TEST(KeyDirectory, EquivocationIsRejected) {
  KeyDirectory dir;
  ASSERT_TRUE(dir.Register(1, MakeKey(3)).ok());
  const Status s = dir.Register(1, MakeKey(4));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kProtocolViolation);
  // The original key survives.
  EXPECT_EQ(dir.Lookup(1).value().n(), MakeKey(3).n());
}

TEST(KeyDirectory, ManyAgentsIndependent) {
  KeyDirectory dir;
  for (int a = 0; a < 10; ++a) {
    ASSERT_TRUE(dir.Register(a, MakeKey(100 + static_cast<uint64_t>(a))).ok());
  }
  EXPECT_EQ(dir.size(), 10u);
  for (int a = 0; a < 10; ++a) {
    EXPECT_EQ(dir.Lookup(a).value().n(),
              MakeKey(100 + static_cast<uint64_t>(a)).n());
  }
}

}  // namespace
}  // namespace pem::protocol
