// AggregationTopology wall: plan construction and the tentpole claim
// that plan SHAPE is free — a hierarchical plan reshapes the wire
// transcript (shorter critical path, different hop pattern) but the
// market outcome stays bit-identical to the flat ring's, on every
// transport backend.
//
// Plan-level properties (pure, no transport):
//   * determinism from (members, config, window); re-planning on
//     window advance (the churn-epoch re-election);
//   * every member in exactly one leaf ring, in original order (the
//     contiguous-chunk invariant that keeps phase-1 randomness draws
//     flat-identical);
//   * leader chains acyclic: level l+1's concatenated members are
//     exactly level l's leaders, ring counts strictly decrease to a
//     single root;
//   * CriticalPathHops strictly below flat's n-1 whenever hierarchical.
//
// Execution-level properties:
//   * hierarchical RingAggregate decrypts to the same sum as flat AND
//     delivers the bit-identical ciphertext (Paillier addition is a
//     commutative product mod n^2), consuming the identical ctx.rng
//     prefix;
//   * the six-backend matrix: a hierarchical window at fan-outs
//     {2, 4, 8} produces flat's exact prices and trades on serial /
//     concurrent / socket / process / tcp / shm, with hier-vs-hier
//     full parity (per-agent bytes, ledger-accounted totals,
//     per-sender transcripts) across all six.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/bus.h"
#include "net/process_transport.h"
#include "net/shm_transport.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "protocol/agent_driver.h"
#include "protocol/context.h"
#include "protocol/pem_protocol.h"
#include "protocol/topology.h"

namespace pem::protocol {
namespace {

std::vector<size_t> Iota(size_t n) {
  std::vector<size_t> members(n);
  for (size_t i = 0; i < n; ++i) members[i] = i;
  return members;
}

TopologyConfig Hier(int fanout, uint64_t seed = 0xF00D) {
  TopologyConfig config;
  config.kind = TopologyKind::kHierarchical;
  config.fanout = fanout;
  config.seed = seed;
  return config;
}

// Leaders of every ring of `level`, in ring order — what the level
// above must consist of, exactly.
std::vector<size_t> LeadersOf(const TopologyLevel& level) {
  std::vector<size_t> leaders;
  for (const TopologyRing& ring : level.rings) leaders.push_back(ring.leader());
  return leaders;
}

// --- plan construction ------------------------------------------------

TEST(Topology, FlatPlanIsOneRingInGivenOrder) {
  const std::vector<size_t> ring = {4, 1, 3};
  const AggregationTopology plan = AggregationTopology::Flat(ring);
  EXPECT_TRUE(plan.flat());
  ASSERT_EQ(plan.levels().size(), 1u);
  ASSERT_EQ(plan.levels()[0].rings.size(), 1u);
  EXPECT_EQ(plan.levels()[0].rings[0].members, ring);
  EXPECT_EQ(plan.num_members(), 3u);
  EXPECT_EQ(plan.LeafMembers(), ring);
  EXPECT_EQ(plan.CriticalPathHops(), 2);  // n - 1
}

TEST(Topology, FlatKindAndDegenerateCommunitiesYieldFlatPlans) {
  const std::vector<size_t> many = Iota(12);
  EXPECT_TRUE(AggregationTopology::Build(many, TopologyConfig{}, 0).flat());
  // A hierarchy over <= 2 members cannot form two leaf rings; it must
  // degenerate to flat rather than build a pointless one-ring tree.
  const std::vector<size_t> one = {7};
  const std::vector<size_t> two = {3, 9};
  EXPECT_TRUE(AggregationTopology::Build(one, Hier(2), 0).flat());
  EXPECT_TRUE(AggregationTopology::Build(two, Hier(2), 0).flat());
  EXPECT_EQ(AggregationTopology::Build(two, Hier(2), 0).LeafMembers(), two);
}

TEST(Topology, DeterministicFromSeedAndWindow) {
  const std::vector<size_t> members = Iota(16);
  const AggregationTopology a = AggregationTopology::Build(members, Hier(4), 3);
  const AggregationTopology b = AggregationTopology::Build(members, Hier(4), 3);
  ASSERT_EQ(a.levels().size(), b.levels().size());
  for (size_t l = 0; l < a.levels().size(); ++l) {
    EXPECT_EQ(a.levels()[l], b.levels()[l]) << "level " << l;
  }
}

TEST(Topology, WindowAdvanceReElectsLeaders) {
  // The churn-epoch property: the plan is keyed by window, so epoch
  // advance re-draws every leader election while the ring STRUCTURE
  // (contiguous chunks) never moves.  Across a handful of windows the
  // leader sets must not all coincide.
  const std::vector<size_t> members = Iota(16);
  const TopologyConfig config = Hier(4);
  const AggregationTopology base =
      AggregationTopology::Build(members, config, 0);
  bool any_leader_moved = false;
  for (int w = 1; w <= 4; ++w) {
    const AggregationTopology plan =
        AggregationTopology::Build(members, config, w);
    ASSERT_EQ(plan.levels().size(), base.levels().size());
    for (size_t l = 0; l < base.levels().size(); ++l) {
      ASSERT_EQ(plan.levels()[l].rings.size(), base.levels()[l].rings.size());
      for (size_t r = 0; r < base.levels()[0].rings.size() && l == 0; ++r) {
        // Leaf membership is window-invariant (chunking ignores the
        // window); only the elections move.
        EXPECT_EQ(plan.levels()[0].rings[r].members,
                  base.levels()[0].rings[r].members);
      }
      for (size_t r = 0; r < base.levels()[l].rings.size(); ++r) {
        if (plan.levels()[l].rings[r].leader_pos !=
            base.levels()[l].rings[r].leader_pos) {
          any_leader_moved = true;
        }
      }
    }
  }
  EXPECT_TRUE(any_leader_moved);
}

TEST(Topology, SeedChangesElections) {
  const std::vector<size_t> members = Iota(16);
  const AggregationTopology a =
      AggregationTopology::Build(members, Hier(4, 1), 0);
  const AggregationTopology b =
      AggregationTopology::Build(members, Hier(4, 2), 0);
  bool any_leader_differs = false;
  ASSERT_EQ(a.levels().size(), b.levels().size());
  for (size_t l = 0; l < a.levels().size(); ++l) {
    for (size_t r = 0; r < a.levels()[l].rings.size(); ++r) {
      if (a.levels()[l].rings[r].leader_pos !=
          b.levels()[l].rings[r].leader_pos) {
        any_leader_differs = true;
      }
    }
  }
  EXPECT_TRUE(any_leader_differs);
}

TEST(Topology, EveryMemberInExactlyOneLeafRingInOriginalOrder) {
  // Members need not be 0..n-1 — coalitions pass arbitrary party
  // indices.  The leaves must partition them, contiguously, in order.
  const std::vector<size_t> members = {9, 2, 14, 0, 5, 11, 7, 3, 8, 1, 12};
  for (int fanout : {2, 3, 4, 8}) {
    const AggregationTopology plan =
        AggregationTopology::Build(members, Hier(fanout), 1);
    EXPECT_EQ(plan.LeafMembers(), members) << "fanout " << fanout;
    EXPECT_EQ(plan.num_members(), members.size()) << "fanout " << fanout;
    std::multiset<size_t> seen;
    for (const TopologyRing& ring : plan.levels()[0].rings) {
      ASSERT_FALSE(ring.members.empty());
      ASSERT_LT(ring.leader_pos, ring.members.size());
      for (size_t m : ring.members) seen.insert(m);
    }
    EXPECT_EQ(seen, std::multiset<size_t>(members.begin(), members.end()));
  }
}

TEST(Topology, LeaderChainsClimbToASingleRoot) {
  for (size_t n : {5u, 8u, 16u, 33u, 100u}) {
    for (int fanout : {2, 4, 8}) {
      const AggregationTopology plan =
          AggregationTopology::Build(Iota(n), Hier(fanout), 2);
      ASSERT_GE(plan.levels().size(), 2u) << n << "/" << fanout;
      EXPECT_EQ(plan.levels().back().rings.size(), 1u) << n << "/" << fanout;
      for (size_t l = 0; l + 1 < plan.levels().size(); ++l) {
        // Acyclic by construction: level l+1 is exactly level l's
        // leaders, and its ring count strictly decreases.
        std::vector<size_t> above;
        for (const TopologyRing& ring : plan.levels()[l + 1].rings) {
          above.insert(above.end(), ring.members.begin(), ring.members.end());
        }
        EXPECT_EQ(above, LeadersOf(plan.levels()[l]))
            << n << "/" << fanout << " level " << l;
        EXPECT_LT(plan.levels()[l + 1].rings.size(),
                  plan.levels()[l].rings.size())
            << n << "/" << fanout << " level " << l;
      }
    }
  }
}

TEST(Topology, FanoutBoundsRingSizes) {
  const AggregationTopology plan =
      AggregationTopology::Build(Iota(33), Hier(4), 0);
  for (const TopologyLevel& level : plan.levels()) {
    for (const TopologyRing& ring : level.rings) {
      EXPECT_LE(ring.members.size(), 4u);
    }
  }
}

TEST(Topology, CriticalPathStrictlyBelowFlat) {
  // The acceptance claim: for n >= 8 every hierarchical plan beats the
  // flat ring's n-1 sequential hops (the bench sweeps the same grid).
  for (size_t n : {8u, 16u, 33u}) {
    const int flat_hops =
        AggregationTopology::Flat(Iota(n)).CriticalPathHops();
    EXPECT_EQ(flat_hops, static_cast<int>(n) - 1);
    for (int fanout : {2, 4, 8}) {
      const AggregationTopology plan =
          AggregationTopology::Build(Iota(n), Hier(fanout), 0);
      EXPECT_LT(plan.CriticalPathHops(), flat_hops) << n << "/" << fanout;
      EXPECT_GT(plan.CriticalPathHops(), 0) << n << "/" << fanout;
    }
  }
}

// --- plan execution (MessageBus) --------------------------------------

std::vector<Party> MakeParties(const std::vector<double>& nets,
                               crypto::Rng& rng) {
  std::vector<Party> parties;
  for (size_t i = 0; i < nets.size(); ++i) {
    grid::AgentParams params;
    parties.emplace_back(static_cast<net::AgentId>(i), params);
    grid::WindowState st;
    st.generation_kwh = nets[i] > 0 ? nets[i] : 0.0;
    st.load_kwh = nets[i] < 0 ? -nets[i] : 0.0;
    parties.back().BeginWindow(st, int64_t{1} << 30, rng);
  }
  return parties;
}

TEST(TopologyExecution, HierarchicalSumEqualsFlatBitForBit) {
  // Same seed, same parties, same members: the hierarchical plan must
  // deliver not just the same SUM but the IDENTICAL ciphertext (the
  // product mod n^2 is commutative), having consumed the identical
  // ctx.rng prefix (asserted via the next draw after the aggregation).
  const std::vector<double> nets = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0,
                                    7.0, 8.0};
  const std::vector<size_t> ring = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto run = [&](const AggregationTopology& plan,
                       crypto::PaillierCiphertext& out, uint64_t& next_draw) {
    crypto::DeterministicRng rng(5);
    std::vector<Party> parties = MakeParties(nets, rng);
    parties[0].EnsureKeys(128, rng);
    net::MessageBus bus(static_cast<int>(nets.size()));
    std::vector<net::Endpoint> eps = bus.endpoints();
    PemConfig cfg;
    cfg.key_bits = 128;
    ProtocolContext ctx{eps, rng, cfg};
    out = RingAggregate(ctx, parties[0].public_key(), parties, plan,
                        [](const Party& p) { return p.net_raw(); },
                        parties[0].id());
    EXPECT_EQ(parties[0].private_key().DecryptSigned(out), 36'000'000);
    next_draw = rng.NextU64();
  };
  crypto::PaillierCiphertext flat_ct, hier_ct;
  uint64_t flat_draw = 0, hier_draw = 1;
  run(AggregationTopology::Flat(ring), flat_ct, flat_draw);
  for (int fanout : {2, 3, 4}) {
    const AggregationTopology plan =
        AggregationTopology::Build(ring, Hier(fanout), 0);
    ASSERT_FALSE(plan.flat()) << fanout;
    run(plan, hier_ct, hier_draw);
    EXPECT_EQ(hier_ct.value, flat_ct.value) << "fanout " << fanout;
    EXPECT_EQ(hier_draw, flat_draw) << "fanout " << fanout;
  }
}

TEST(TopologyExecution, PlanRingTopologyFollowsConfigAndWindow) {
  crypto::DeterministicRng rng(6);
  std::vector<Party> parties =
      MakeParties({1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0}, rng);
  net::MessageBus bus(8);
  std::vector<net::Endpoint> eps = bus.endpoints();
  PemConfig cfg;
  cfg.key_bits = 128;
  cfg.topology = Hier(2);
  ProtocolContext ctx{eps, rng, cfg};
  const std::vector<size_t> members = Iota(8);
  const AggregationTopology w0 = PlanRingTopology(ctx, members);
  EXPECT_FALSE(w0.flat());
  EXPECT_EQ(w0.levels()[0].rings.size(), 4u);
  // The plan is keyed by ctx.window — RunPemWindow sets it, so churn
  // epochs re-plan without any extra wiring.
  ctx.window = 1;
  const AggregationTopology w1 = PlanRingTopology(ctx, members);
  EXPECT_EQ(w1.levels()[0].rings.size(), 4u);
  EXPECT_EQ(w1.LeafMembers(), w0.LeafMembers());
}

// --- six-backend market parity ----------------------------------------
//
// The same harness as test_transcript_parity's six-way matrix, but with
// a hierarchical aggregation plan: per fan-out, the six backends must
// agree with each other in FULL (prices, trades, total and per-agent
// ledger bytes, per-sender transcript), and agree with the flat
// baseline on the market outcome (the transcript legitimately differs
// in shape — that byte-profile delta is the point of the hierarchy).

struct WindowRun {
  std::vector<net::Message> messages;
  PemWindowResult result;
  uint64_t transport_total_bytes = 0;
  std::vector<net::TrafficStats> per_agent;
};

market::AgentWindowInput Agent(double g, double l, double k = 1.0) {
  market::AgentWindowInput in;
  in.params.preference_k = k;
  in.params.battery_epsilon = 0.9;
  in.state.generation_kwh = g;
  in.state.load_kwh = l;
  return in;
}

// Eight agents so the seller and buyer coalitions are big enough for a
// fanout-2 hierarchy to actually form sub-rings.
const std::vector<market::AgentWindowInput> kMarket = {
    Agent(1.7, 0.3, 0.83), Agent(0.9, 0.2, 1.21), Agent(0.0, 1.4),
    Agent(0.1, 0.8),       Agent(0.0, 0.6),       Agent(2.2, 0.4, 1.05),
    Agent(1.3, 0.2, 0.97), Agent(0.0, 1.1),
};

PemConfig TopologyWindowConfig(const TopologyConfig& topology) {
  PemConfig cfg;
  cfg.key_bits = 128;
  cfg.topology = topology;
  return cfg;
}

WindowRun RunWindowInProcess(const net::ExecutionPolicy& policy,
                             const TopologyConfig& topology, uint64_t seed) {
  WindowRun run;
  std::unique_ptr<net::Transport> bus = net::MakeTransport(
      policy.transport_kind, static_cast<int>(kMarket.size()));
  std::vector<net::Endpoint> eps = bus->endpoints();
  bus->SetObserver(
      [&run](const net::Message& m) { run.messages.push_back(m); });
  crypto::DeterministicRng rng(seed);
  const PemConfig cfg = TopologyWindowConfig(topology);
  std::vector<Party> parties;
  for (size_t i = 0; i < kMarket.size(); ++i) {
    parties.emplace_back(static_cast<net::AgentId>(i), kMarket[i].params);
    parties.back().BeginWindow(kMarket[i].state, cfg.nonce_bound, rng);
  }
  ProtocolContext ctx{eps, rng, cfg, nullptr, policy};
  bus->ResetStats();
  run.result = RunPemWindow(ctx, parties);
  run.transport_total_bytes = bus->total_bytes();
  for (size_t i = 0; i < kMarket.size(); ++i) {
    run.per_agent.push_back(bus->stats(static_cast<net::AgentId>(i)));
  }
  return run;
}

WindowRun RunWindowForked(net::TransportKind kind,
                          const TopologyConfig& topology, uint64_t seed) {
  WindowRun run;
  const PemConfig cfg = TopologyWindowConfig(topology);
  const net::ExecutionPolicy policy{kind, 1};
  crypto::DeterministicRng rng(seed);
  std::vector<Party> parties;
  for (size_t i = 0; i < kMarket.size(); ++i) {
    parties.emplace_back(static_cast<net::AgentId>(i), kMarket[i].params);
  }
  // Each child replays the deterministic script over its fork copy —
  // including cfg.topology, so all processes derive the identical plan.
  net::AgentSupervisor::ChildMain child_main =
      [&cfg, &policy, &rng, &parties](net::AgentId self, net::Transport& wire,
                                      net::ControlChannel& ctl) -> int {
    std::vector<net::Endpoint> eps = wire.endpoints();
    ProtocolContext ctx{eps, rng, cfg, nullptr, policy};
    AgentDriver::Callbacks callbacks;
    callbacks.begin_window = [&](int) {
      for (size_t i = 0; i < kMarket.size(); ++i) {
        parties[i].BeginWindow(kMarket[i].state, cfg.nonce_bound, rng);
      }
    };
    AgentDriver driver(self, ctx, parties, callbacks);
    driver.Serve(ctl);
    return 0;
  };

  std::unique_ptr<net::AgentSupervisor> owner;
  if (kind == net::TransportKind::kTcp) {
    owner = std::make_unique<net::TcpTransport>(
        static_cast<int>(kMarket.size()), child_main,
        net::TcpTransport::Options{});
  } else if (kind == net::TransportKind::kShm) {
    owner = std::make_unique<net::ShmTransport>(
        static_cast<int>(kMarket.size()), child_main,
        net::ShmTransport::Options{});
  } else {
    owner = std::make_unique<net::ProcessTransport>(
        static_cast<int>(kMarket.size()), child_main);
  }
  net::AgentSupervisor& transport = *owner;
  transport.ResetStats();
  transport.SetObserver(
      [&run](const net::Message& m) { run.messages.push_back(m); });
  std::vector<net::TrafficStats> before;
  for (net::AgentId a = 0; a < transport.num_agents(); ++a) {
    before.push_back(transport.stats(a));
  }
  net::ByteWriter cmd;
  cmd.U32(0);
  transport.CommandAll(net::kCtlCmdRun, cmd.Take());
  const WindowReport report = CollectWindowReports(transport, before, 0);
  run.transport_total_bytes = transport.total_bytes();
  for (size_t i = 0; i < kMarket.size(); ++i) {
    run.per_agent.push_back(transport.stats(static_cast<net::AgentId>(i)));
  }
  transport.SetObserver(nullptr);
  transport.Shutdown();
  run.result.type = report.type;
  run.result.price = report.price;
  run.result.trades = report.trades;
  run.result.bus_bytes = report.bus_bytes;
  return run;
}

// Identical market outcome — the plan-shape-independent core.
void ExpectSameMarketOutcome(const WindowRun& a, const WindowRun& b) {
  EXPECT_EQ(b.result.type, a.result.type);
  EXPECT_DOUBLE_EQ(b.result.price, a.result.price);
  ASSERT_EQ(b.result.trades.size(), a.result.trades.size());
  for (size_t i = 0; i < a.result.trades.size(); ++i) {
    EXPECT_EQ(b.result.trades[i].seller_index, a.result.trades[i].seller_index)
        << i;
    EXPECT_EQ(b.result.trades[i].buyer_index, a.result.trades[i].buyer_index)
        << i;
    EXPECT_DOUBLE_EQ(b.result.trades[i].energy_kwh,
                     a.result.trades[i].energy_kwh)
        << i;
    EXPECT_DOUBLE_EQ(b.result.trades[i].payment, a.result.trades[i].payment)
        << i;
  }
}

void ExpectSameTranscriptPerSender(const std::vector<net::Message>& serial,
                                   const std::vector<net::Message>& other) {
  ASSERT_EQ(other.size(), serial.size());
  std::map<net::AgentId, std::vector<const net::Message*>> a, b;
  for (const net::Message& m : serial) a[m.from].push_back(&m);
  for (const net::Message& m : other) b[m.from].push_back(&m);
  ASSERT_EQ(b.size(), a.size());
  for (const auto& [sender, seq] : a) {
    const auto it = b.find(sender);
    ASSERT_NE(it, b.end()) << "sender " << sender << " missing";
    ASSERT_EQ(it->second.size(), seq.size()) << "sender " << sender;
    for (size_t i = 0; i < seq.size(); ++i) {
      EXPECT_TRUE(*it->second[i] == *seq[i])
          << "sender " << sender << " diverges at its message " << i;
    }
  }
}

// Full backend parity between two runs of the SAME plan shape.
void ExpectFullParity(const WindowRun& serial, const WindowRun& other,
                      bool strict_order) {
  ExpectSameMarketOutcome(serial, other);
  EXPECT_EQ(other.result.bus_bytes, serial.result.bus_bytes);
  EXPECT_EQ(other.transport_total_bytes, serial.transport_total_bytes);
  // Ledger-accounted: the transport's own total equals the canonical
  // per-window accounting, hierarchy or not.
  EXPECT_EQ(serial.transport_total_bytes, serial.result.bus_bytes);
  ASSERT_EQ(other.per_agent.size(), serial.per_agent.size());
  for (size_t a = 0; a < serial.per_agent.size(); ++a) {
    EXPECT_TRUE(other.per_agent[a] == serial.per_agent[a])
        << "per-agent traffic diverges for agent " << a;
  }
  if (strict_order) {
    ASSERT_EQ(other.messages.size(), serial.messages.size());
    for (size_t i = 0; i < serial.messages.size(); ++i) {
      EXPECT_TRUE(other.messages[i] == serial.messages[i])
          << "transcript diverges at message " << i;
    }
  } else {
    ExpectSameTranscriptPerSender(serial.messages, other.messages);
  }
  EXPECT_FALSE(serial.messages.empty());
}

void SixBackendRow(int fanout) {
  const TopologyConfig flat;  // kFlat
  const TopologyConfig hier = Hier(fanout);
  const uint64_t seed = 42;
  const WindowRun flat_serial =
      RunWindowInProcess(net::ExecutionPolicy::Serial(), flat, seed);
  const WindowRun serial =
      RunWindowInProcess(net::ExecutionPolicy::Serial(), hier, seed);
  // The claim under test: plan shape changes the wire, not the market.
  ExpectSameMarketOutcome(flat_serial, serial);
  EXPECT_FALSE(serial.messages.empty());

  const WindowRun parallel =
      RunWindowInProcess(net::ExecutionPolicy::Parallel(4), hier, seed);
  const WindowRun socket =
      RunWindowInProcess(net::ExecutionPolicy::Socket(), hier, seed);
  const WindowRun process =
      RunWindowForked(net::TransportKind::kProcess, hier, seed);
  const WindowRun tcp = RunWindowForked(net::TransportKind::kTcp, hier, seed);
  const WindowRun shm = RunWindowForked(net::TransportKind::kShm, hier, seed);
  ExpectFullParity(serial, parallel, /*strict_order=*/true);
  ExpectFullParity(serial, socket, /*strict_order=*/true);
  ExpectFullParity(serial, process, /*strict_order=*/false);
  ExpectFullParity(serial, tcp, /*strict_order=*/false);
  ExpectFullParity(serial, shm, /*strict_order=*/false);
}

TEST(TopologyParity, SixBackendsFanout2) { SixBackendRow(2); }
TEST(TopologyParity, SixBackendsFanout4) { SixBackendRow(4); }
TEST(TopologyParity, SixBackendsFanout8) { SixBackendRow(8); }

}  // namespace
}  // namespace pem::protocol
