// Fig. 6(a): the trading price across all 720 windows for 200 smart
// homes, against the grid purchase price, regular retail price, and
// the PEM band [pl, ph].  Prices printed in cents/kWh like the paper.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace pem;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  const int homes = flags.homes > 0 ? flags.homes : 200;

  bench::PrintHeader("Fig. 6(a)", "trading price across the day (cents/kWh)");
  const grid::CommunityTrace trace = bench::MakeTrace(homes, flags.windows);
  core::SimulationConfig cfg;  // plaintext oracle == protocol output
  const core::SimulationResult r = core::RunSimulation(trace, cfg);
  const market::MarketParams& mp = cfg.pem.market;

  CsvWriter csv(flags.out_dir + "/fig6a_price.csv",
                {"window", "price_cents", "market_type"});
  std::printf("%8s %14s %10s\n", "window", "price (c/kWh)", "market");
  int at_retail = 0, at_floor = 0, at_ceiling = 0, interior = 0;
  for (const core::WindowRecord& rec : r.windows) {
    const char* type =
        rec.type == market::MarketType::kGeneral
            ? "general"
            : rec.type == market::MarketType::kExtreme ? "extreme" : "none";
    csv.Row({CsvWriter::Num(int64_t{rec.window}),
             CsvWriter::Num(rec.price * 100.0), type});
    if (rec.window % 60 == 0) {
      std::printf("%8d %14.1f %10s\n", rec.window, rec.price * 100.0, type);
    }
    if (rec.type == market::MarketType::kNoMarket) {
      ++at_retail;
    } else if (rec.price <= mp.price_floor + 1e-9) {
      ++at_floor;
    } else if (rec.price >= mp.price_ceiling - 1e-9) {
      ++at_ceiling;
    } else {
      ++interior;
    }
  }
  std::printf(
      "\nband: grid purchase %.0f, lower %.0f, upper %.0f, retail %.0f "
      "(cents/kWh)\nwindows at retail (no market): %d, at floor: %d, "
      "interior: %d, at ceiling: %d\n"
      "expected shape: retail price at the edges of the day, floor-bounded "
      "midday (paper Fig. 6a)\n",
      mp.buyback_price * 100, mp.price_floor * 100, mp.price_ceiling * 100,
      mp.retail_price * 100, at_retail, at_floor, interior, at_ceiling);
  return 0;
}
