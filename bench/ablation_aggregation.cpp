// Ablation (DESIGN.md §6): ring vs. star aggregation for the Paillier
// sums of Protocols 2-3.
//
// Ring (the paper's choice): each agent multiplies its ciphertext into
// a running product and forwards it — n messages of one ciphertext,
// but strictly sequential.  Star: every agent sends its ciphertext to
// the aggregator who multiplies locally — same message count, but the
// aggregator receives n ciphertexts (hotspot) while the sends could
// parallelize.  This bench quantifies wall time and the per-agent
// bandwidth skew.
#include <cstdio>
#include <span>
#include <vector>

#include "crypto/paillier.h"
#include "crypto/rng.h"
#include "net/bus.h"
#include "net/serialize.h"
#include "util/stopwatch.h"

int main() {
  using namespace pem;
  using namespace pem::crypto;

  std::printf("=== Ablation: ring vs star aggregation ===\n");
  std::printf("%6s %9s %12s %12s %18s %18s\n", "n", "key", "ring (ms)",
              "star (ms)", "ring max B/agent", "star max B/agent");

  DeterministicRng rng(1);
  for (int key_bits : {512, 1024}) {
    const PaillierKeyPair kp = GeneratePaillierKeyPair(key_bits, rng);
    for (int n : {50, 100, 200}) {
      const size_t ct_bytes = kp.pub.ciphertext_bytes();

      // --- ring ---
      net::MessageBus ring_bus(n);
      std::vector<net::Endpoint> ring_agents = ring_bus.endpoints();
      Stopwatch ring_timer;
      PaillierCiphertext acc = kp.pub.EncryptSigned(0, rng);
      for (int i = 1; i < n; ++i) {
        const PaillierCiphertext mine = kp.pub.EncryptSigned(i, rng);
        acc = kp.pub.Add(acc, mine);
        net::ByteWriter w;
        w.Bytes(acc.value.ToBytesPadded(ct_bytes));
        ring_agents[static_cast<size_t>(i - 1)].Send(
            static_cast<net::AgentId>(i), 1, w.Take());
        (void)ring_agents[static_cast<size_t>(i)].Receive();
      }
      const double ring_ms = ring_timer.ElapsedMillis();

      // --- star ---
      net::MessageBus star_bus(n);
      std::vector<net::Endpoint> star_agents = star_bus.endpoints();
      Stopwatch star_timer;
      PaillierCiphertext star_acc = kp.pub.EncryptSigned(0, rng);
      for (int i = 1; i < n; ++i) {
        const PaillierCiphertext mine = kp.pub.EncryptSigned(i, rng);
        net::ByteWriter w;
        w.Bytes(mine.value.ToBytesPadded(ct_bytes));
        star_agents[static_cast<size_t>(i)].Send(0, 1, w.Take());
        (void)star_agents[0].Receive();
        star_acc = kp.pub.Add(star_acc, mine);
      }
      const double star_ms = star_timer.ElapsedMillis();

      auto max_bytes = [&](std::span<const net::Endpoint> agents) {
        uint64_t mx = 0;
        for (const net::Endpoint& ep : agents) {
          const net::TrafficStats s = ep.stats();
          mx = std::max(mx, s.bytes_sent + s.bytes_received);
        }
        return mx;
      };
      std::printf("%6d %8db %12.1f %12.1f %18llu %18llu\n", n, key_bits,
                  ring_ms, star_ms,
                  static_cast<unsigned long long>(max_bytes(ring_agents)),
                  static_cast<unsigned long long>(max_bytes(star_agents)));
    }
  }
  std::printf(
      "\ntakeaway: equal total messages; the star concentrates ~n ciphertexts "
      "on the aggregator (hotspot), the ring spreads 2 per agent — the "
      "paper's ring choice trades latency for per-agent fairness\n");
  return 0;
}
