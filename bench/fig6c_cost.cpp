// Fig. 6(c): total cost of the buyer coalition per trading window for
// 100 and 200 parties, with and without PEM.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace pem;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  const std::vector<int> populations =
      flags.homes > 0 ? std::vector<int>{flags.homes}
                      : std::vector<int>{100, 200};

  bench::PrintHeader("Fig. 6(c)", "buyer coalition total cost (dollars)");
  CsvWriter csv(flags.out_dir + "/fig6c_cost.csv",
                {"window", "n", "cost_pem", "cost_nopem"});

  for (int n : populations) {
    const grid::CommunityTrace trace = bench::MakeTrace(n, flags.windows);
    core::SimulationConfig cfg;
    const core::SimulationResult r = core::RunSimulation(trace, cfg);

    double total_pem = 0, total_base = 0;
    double savings_ratio_sum = 0;
    int active_windows = 0;
    std::printf("\n-- %d parties --\n%8s %12s %12s\n", n, "window",
                "with PEM", "without");
    for (const core::WindowRecord& rec : r.windows) {
      csv.Row({CsvWriter::Num(int64_t{rec.window}), CsvWriter::Num(int64_t{n}),
               CsvWriter::Num(rec.buyer_cost_pem),
               CsvWriter::Num(rec.buyer_cost_baseline)});
      total_pem += rec.buyer_cost_pem;
      total_base += rec.buyer_cost_baseline;
      if (rec.type != market::MarketType::kNoMarket &&
          rec.buyer_cost_baseline > 0) {
        savings_ratio_sum += 1.0 - rec.buyer_cost_pem / rec.buyer_cost_baseline;
        ++active_windows;
      }
      if (rec.window % 120 == 0) {
        std::printf("%8d %12.3f %12.3f\n", rec.window, rec.buyer_cost_pem,
                    rec.buyer_cost_baseline);
      }
    }
    std::printf(
        "day total: %.1f with PEM vs %.1f without (%.1f%% saved); "
        "avg per-window savings in the %d active-market windows: %.1f%%\n",
        total_pem, total_base, 100.0 * (1.0 - total_pem / total_base),
        active_windows,
        active_windows > 0 ? 100.0 * savings_ratio_sum / active_windows
                           : 0.0);
  }
  std::printf(
      "\nexpected shape: with-PEM cost below the without-PEM cost in every "
      "window; paper reports ~25.3%% average savings (Fig. 6c)\n");
  return 0;
}
