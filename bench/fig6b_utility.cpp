// Fig. 6(b): utility of two representative sellers with preference
// parameters k = 20 and k = 40 across the day, with PEM (selling at
// the market price p*) vs. without PEM (selling to the grid at pb_g).
//
// The two tracked sellers are synthetic panels large enough to stay
// net producers whenever the sun is up, mirroring the paper's "agents
// which are sellers in all 720 trading windows".
#include "bench/common.h"

#include <cmath>

#include "market/incentives.h"

int main(int argc, char** argv) {
  using namespace pem;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  const int homes = flags.homes > 0 ? flags.homes : 200;

  bench::PrintHeader("Fig. 6(b)", "tracked seller utility, k = 20 and 40");
  grid::CommunityTrace trace = bench::MakeTrace(homes, flags.windows);
  // Replace homes 0 and 1 with the tracked sellers: big panels, no
  // battery, paper's preference parameters.
  for (int i = 0; i < 2; ++i) {
    grid::HomeTrace& h = trace.homes[static_cast<size_t>(i)];
    h.params.preference_k = i == 0 ? 20.0 : 40.0;
    h.params.battery_capacity_kwh = 0.0;
    h.params.battery_rate_kwh = 0.0;
    // A guaranteed oversized panel (6 kW clear-sky bell) and a light
    // load, so the agent is a net seller whenever the sun is up.
    const int m = flags.windows;
    for (int w = 0; w < m; ++w) {
      const double x = static_cast<double>(w) / m;            // 0..1 over the day
      const double bell = std::pow(std::max(0.0, std::sin(M_PI * x)), 1.5);
      grid::WindowObservation& o = h.observations[static_cast<size_t>(w)];
      o.generation_kwh = 6.0 * bell * (12.0 / m);
      o.load_kwh *= 0.3;
    }
  }

  core::SimulationConfig cfg;
  cfg.record_states = true;
  const core::SimulationResult r = core::RunSimulation(trace, cfg);
  const market::MarketParams& mp = cfg.pem.market;

  CsvWriter csv(flags.out_dir + "/fig6b_utility.csv",
                {"window", "u_k20_pem", "u_k20_nopem", "u_k40_pem",
                 "u_k40_nopem"});
  std::printf("%8s %12s %12s %12s %12s\n", "window", "k=20 PEM", "k=20 base",
              "k=40 PEM", "k=40 base");
  double gain20 = 0, gain40 = 0;
  for (size_t w = 0; w < r.windows.size(); ++w) {
    const core::WindowRecord& rec = r.windows[w];
    // A seller trades at p* with PEM; at the grid buyback price
    // without.  Windows where the tracked agent is not a net seller
    // (or no market forms) price both cases at pb — the comparison is
    // only about *selling* surplus, as in the paper's figure.
    const bool market_open = rec.type != market::MarketType::kNoMarket;
    // Utility is evaluated at the metered load (Eq. 4 on the trace
    // data).  The paper's best-response load (Eq. 15) is inconsistent
    // for k = 20/40 — it would make these agents net consumers — see
    // the erratum note in EXPERIMENTS.md.
    double u[2][2];
    for (int i = 0; i < 2; ++i) {
      const grid::WindowState& st = r.resolved_states[w][static_cast<size_t>(i)];
      const grid::AgentParams& params =
          trace.homes[static_cast<size_t>(i)].params;
      const double pem_price = (market_open && st.NetEnergy() > 0)
                                   ? rec.price
                                   : mp.buyback_price;
      // Eq. 4 evaluated on instantaneous power (kW): the paper's
      // utility scale (0-40 for k=20/40) implies kW-scale arguments,
      // not per-minute kWh (see EXPERIMENTS.md).
      const double to_kw = 60.0;
      for (int c = 0; c < 2; ++c) {
        const double price = c == 0 ? pem_price : mp.buyback_price;
        u[i][c] = market::SellerUtility(
            params.preference_k, st.load_kwh * to_kw, params.battery_epsilon,
            st.battery_kwh * to_kw, price, st.generation_kwh * to_kw);
      }
    }
    gain20 += u[0][0] - u[0][1];
    gain40 += u[1][0] - u[1][1];
    csv.Row({CsvWriter::Num(int64_t{rec.window}), CsvWriter::Num(u[0][0]),
             CsvWriter::Num(u[0][1]), CsvWriter::Num(u[1][0]),
             CsvWriter::Num(u[1][1])});
    if (rec.window % 60 == 0) {
      std::printf("%8d %12.2f %12.2f %12.2f %12.2f\n", rec.window, u[0][0],
                  u[0][1], u[1][0], u[1][1]);
    }
  }
  std::printf(
      "\ncumulative utility gain with PEM: k=20: %.1f, k=40: %.1f\n"
      "expected shape: PEM utility >= no-PEM utility in every window; the "
      "k=40 improvement exceeds the k=20 one (paper Fig. 6b)\n",
      gain20, gain40);
  return 0;
}
