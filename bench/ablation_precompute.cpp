// Ablation (DESIGN.md §6): idle-time precomputation of Paillier
// encryption randomness.
//
// This reproduces the paper's explanation for Fig. 5(b): "the key size
// for encryption and decryption executed in our protocols does not
// affect the runtime (since the encryption and decryption are
// independently executed in parallel during idle time)".  The
// expensive r^n mod n^2 factor is plaintext-independent, so agents can
// precompute it between trading windows; the online encryption then
// costs one multiplication and the key-size lines collapse.
//
// We time a 100-contribution ring aggregation (the Protocols 2-3
// pattern) per key size, with fresh vs. pooled randomness.  A second
// sweep times the refill itself — the idle-time phase — across worker
// counts and with/without the key owner's CRT tables, since this PR
// made both knobs real (the factor sequence is identical in every
// cell; tests/crypto/test_paillier.cpp asserts it).
#include <cstdio>

#include "crypto/paillier.h"
#include "crypto/rng.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

int main() {
  using namespace pem;
  using namespace pem::crypto;

  std::printf("=== Ablation: idle-time encryption precompute ===\n");
  std::printf("(100-member encrypted aggregation, online time only)\n\n");
  std::printf("%10s %18s %18s %10s\n", "key bits", "fresh (ms)",
              "pooled (ms)", "speedup");

  DeterministicRng rng(7);
  const int kMembers = 100;
  for (int key_bits : {512, 1024, 2048}) {
    const PaillierKeyPair kp = GeneratePaillierKeyPair(key_bits, rng);

    // Baseline: fresh randomness per encryption (the timed path of our
    // Fig. 5(b) bench).
    Stopwatch fresh_timer;
    PaillierCiphertext acc = kp.pub.EncryptSigned(0, rng);
    for (int i = 1; i < kMembers; ++i) {
      acc = kp.pub.Add(acc, kp.pub.EncryptSigned(i, rng));
    }
    const double fresh_ms = fresh_timer.ElapsedMillis();

    // Idle-time phase (untimed): precompute the randomness factors.
    PaillierRandomnessPool pool(kp.pub);
    pool.Refill(static_cast<size_t>(kMembers), rng);

    // Online phase: one modular multiplication per encryption.
    Stopwatch pooled_timer;
    PaillierCiphertext acc2 = pool.EncryptSigned(0, rng);
    for (int i = 1; i < kMembers; ++i) {
      acc2 = kp.pub.Add(acc2, pool.EncryptSigned(i, rng));
    }
    const double pooled_ms = pooled_timer.ElapsedMillis();

    // Sanity: both paths aggregate to the same sum.
    if (kp.priv.DecryptSigned(acc) != kp.priv.DecryptSigned(acc2)) {
      std::fprintf(stderr, "aggregation mismatch!\n");
      return 1;
    }
    std::printf("%10d %18.2f %18.2f %9.1fx\n", key_bits, fresh_ms, pooled_ms,
                fresh_ms / pooled_ms);
  }
  std::printf(
      "\ntakeaway: with idle-time precompute the online cost is nearly "
      "key-size independent — this is why the paper's Fig. 5(b) lines "
      "coincide while our timed-everything Fig. 5(b) separates by key "
      "size\n");

  // --- the idle-time phase itself: concurrent + owner-CRT refill -----
  std::printf("\n=== Refill sweep: owner CRT x worker count ===\n");
  std::printf("(topping one pool up to 64 factors, 1024-bit key;\n");
  std::printf(" serial full-width row = the pre-PR behavior)\n\n");
  std::printf("%8s %12s %18s %10s\n", "threads", "factor", "refill (ms)",
              "speedup");
  const PaillierKeyPair kp = GeneratePaillierKeyPair(1024, rng);
  const size_t kTarget = 64;
  double baseline_ms = 0.0;
  for (const bool use_crt : {false, true}) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      DeterministicRng refill_rng(11);  // same r stream for every cell
      PaillierRandomnessPool pool(kp.pub);
      if (use_crt) pool.AttachCrtEncryptor(PaillierCrtEncryptor(kp.priv));
      Stopwatch timer;
      pool.Refill(kTarget, refill_rng, threads);
      const double ms = timer.ElapsedMillis();
      if (!use_crt && threads == 1) baseline_ms = ms;
      std::printf("%8u %12s %18.2f %9.1fx\n", threads,
                  use_crt ? "owner-crt" : "full-width", ms,
                  baseline_ms / ms);
    }
  }
  std::printf(
      "\ntakeaway: the two idle-time levers compound — owner CRT makes\n"
      "each exponentiation ~2-3x cheaper and the refill fans them out\n"
      "across cores (this machine reports %u).  On a 1-core CI\n"
      "container the thread rows collapse to ~1x; run on a multicore\n"
      "host to see the product of both factors.\n",
      pem::DefaultThreads());
  return 0;
}
