// Fig. 6(d): energy exchanged with the main grid per trading window,
// with and without PEM (200 homes).
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace pem;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  const int homes = flags.homes > 0 ? flags.homes : 200;

  bench::PrintHeader("Fig. 6(d)", "interaction with the main grid (kWh)");
  const grid::CommunityTrace trace = bench::MakeTrace(homes, flags.windows);
  core::SimulationConfig cfg;
  const core::SimulationResult r = core::RunSimulation(trace, cfg);

  CsvWriter csv(flags.out_dir + "/fig6d_grid_interaction.csv",
                {"window", "interaction_pem", "interaction_nopem"});
  std::printf("%8s %14s %14s\n", "window", "with PEM", "without PEM");
  double total_pem = 0, total_base = 0;
  for (const core::WindowRecord& rec : r.windows) {
    csv.Row({CsvWriter::Num(int64_t{rec.window}),
             CsvWriter::Num(rec.grid_interaction_pem),
             CsvWriter::Num(rec.grid_interaction_baseline)});
    total_pem += rec.grid_interaction_pem;
    total_base += rec.grid_interaction_baseline;
    if (rec.window % 60 == 0) {
      std::printf("%8d %14.3f %14.3f\n", rec.window,
                  rec.grid_interaction_pem, rec.grid_interaction_baseline);
    }
  }
  std::printf(
      "\nday totals: %.1f kWh with PEM vs %.1f kWh without (%.1f%% reduced)\n"
      "expected shape: the with-PEM curve sits below the without-PEM curve, "
      "with the largest gap midday when local trading absorbs the most "
      "energy (paper Fig. 6d)\n",
      total_pem, total_base, 100.0 * (1.0 - total_pem / total_base));
  return 0;
}
