// Fig. 5(a): average runtime of a single trading window (full PEM
// protocol stack: market evaluation + pricing + distribution) as the
// number of trading windows grows, for n = 100/200/300 agents at the
// paper's 2048-bit key size.
//
// The per-window cost is measured on `--samples` real protocol
// executions per population size; the m-axis series is the measured
// average (the paper's lines are likewise flat in m).
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace pem;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  const int key_bits = 2048;
  const std::vector<int> populations =
      flags.homes > 0 ? std::vector<int>{flags.homes}
                      : std::vector<int>{100, 200, 300};

  bench::PrintHeader("Fig. 5(a)",
                     "avg runtime per trading window (2048-bit keys)");
  CsvWriter csv(flags.out_dir + "/fig5a_runtime_avg.csv",
                {"num_windows", "n", "avg_runtime_sec"});

  std::printf("%6s %10s %22s\n", "n", "samples", "avg runtime/window (s)");
  std::vector<std::pair<int, double>> averages;
  for (int n : populations) {
    const grid::CommunityTrace trace = bench::MakeTrace(n, flags.windows);
    const bench::CryptoWindowCost cost =
        bench::MeasureCryptoWindows(trace, key_bits, flags.samples);
    averages.emplace_back(n, cost.avg_runtime_seconds);
    std::printf("%6d %10d %22.3f\n", n, cost.windows_executed,
                cost.avg_runtime_seconds);
  }
  for (int m = 120; m <= flags.windows; m += 120) {
    for (const auto& [n, avg] : averages) {
      csv.Row({CsvWriter::Num(int64_t{m}), CsvWriter::Num(int64_t{n}),
               CsvWriter::Num(avg)});
    }
  }
  std::printf(
      "\nexpected shape: flat in m; runtime grows with n "
      "(paper: ~1s/window on 8-core ARMv8)\n");
  return 0;
}
