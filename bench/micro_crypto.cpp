// Micro-benchmarks for the cryptographic substrate (google-benchmark).
// Not a paper figure; used to sanity-check where window time goes and
// to compare against the published Paillier/GC cost models.
#include <benchmark/benchmark.h>

#include "crypto/circuit.h"
#include "crypto/garble.h"
#include "crypto/ot.h"
#include "crypto/paillier.h"
#include "crypto/rng.h"
#include "crypto/secure_compare.h"
#include "net/bus.h"

namespace {

using namespace pem::crypto;

const PaillierKeyPair& Keys(int bits) {
  static DeterministicRng rng(1);
  static std::map<int, PaillierKeyPair> cache;
  auto it = cache.find(bits);
  if (it == cache.end()) {
    it = cache.emplace(bits, GeneratePaillierKeyPair(bits, rng)).first;
  }
  return it->second;
}

void BM_PaillierKeyGen(benchmark::State& state) {
  DeterministicRng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GeneratePaillierKeyPair(static_cast<int>(state.range(0)), rng));
  }
}
BENCHMARK(BM_PaillierKeyGen)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_PaillierEncrypt(benchmark::State& state) {
  const PaillierKeyPair& kp = Keys(static_cast<int>(state.range(0)));
  DeterministicRng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pub.EncryptSigned(123456, rng));
  }
}
BENCHMARK(BM_PaillierEncrypt)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

// Owner-side encryption: the CRT fast path an agent takes under its
// own key.  Compare with BM_PaillierEncrypt (the public path) at the
// same key size.
void BM_PaillierEncryptOwnerCrt(benchmark::State& state) {
  const PaillierKeyPair& kp = Keys(static_cast<int>(state.range(0)));
  const PaillierCrtEncryptor crt(kp.priv);
  DeterministicRng rng(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crt.EncryptSigned(123456, rng));
  }
}
BENCHMARK(BM_PaillierEncryptOwnerCrt)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

// The idle-time pool refill (r^n factors only), per worker count; this
// is what RunSimulation executes between windows.
void BM_PaillierPoolRefill(benchmark::State& state) {
  const PaillierKeyPair& kp = Keys(static_cast<int>(state.range(0)));
  const unsigned threads = static_cast<unsigned>(state.range(1));
  DeterministicRng rng(13);
  const PaillierCrtEncryptor crt(kp.priv);  // key material, not refill cost
  for (auto _ : state) {
    PaillierRandomnessPool pool(kp.pub);
    pool.AttachCrtEncryptor(crt);
    pool.Refill(16, rng, threads);
    benchmark::DoNotOptimize(pool.available());
  }
}
BENCHMARK(BM_PaillierPoolRefill)
    ->Args({1024, 1})->Args({1024, 4})
    ->Unit(benchmark::kMillisecond);

void BM_PaillierDecrypt(benchmark::State& state) {
  const PaillierKeyPair& kp = Keys(static_cast<int>(state.range(0)));
  DeterministicRng rng(3);
  const PaillierCiphertext ct = kp.pub.EncryptSigned(987654, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.priv.DecryptSigned(ct));
  }
}
BENCHMARK(BM_PaillierDecrypt)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_PaillierHomomorphicAdd(benchmark::State& state) {
  const PaillierKeyPair& kp = Keys(static_cast<int>(state.range(0)));
  DeterministicRng rng(4);
  const PaillierCiphertext a = kp.pub.EncryptSigned(1, rng);
  const PaillierCiphertext b = kp.pub.EncryptSigned(2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pub.Add(a, b));
  }
}
BENCHMARK(BM_PaillierHomomorphicAdd)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_PaillierScalarMul(benchmark::State& state) {
  const PaillierKeyPair& kp = Keys(static_cast<int>(state.range(0)));
  DeterministicRng rng(5);
  const PaillierCiphertext a = kp.pub.EncryptSigned(7, rng);
  const BigInt k(int64_t{1} << 40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pub.ScalarMul(a, k));
  }
}
BENCHMARK(BM_PaillierScalarMul)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_GarbleComparator(benchmark::State& state) {
  const Circuit circuit =
      BuildLessThanCircuit(static_cast<int>(state.range(0)));
  DeterministicRng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Garbler(circuit, rng));
  }
}
BENCHMARK(BM_GarbleComparator)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_EvaluateComparator(benchmark::State& state) {
  const Circuit circuit =
      BuildLessThanCircuit(static_cast<int>(state.range(0)));
  DeterministicRng rng(7);
  const Garbler g(circuit, rng);
  std::vector<WireLabel> gl, el;
  for (size_t i = 0; i < circuit.garbler_inputs.size(); ++i) {
    gl.push_back(g.GarblerInputLabel(i, i % 2 == 0));
  }
  for (size_t i = 0; i < circuit.evaluator_inputs.size(); ++i) {
    el.push_back(g.EvaluatorInputLabels(i).first);
  }
  GarbledTables tables = g.tables();
  for (auto _ : state) {
    Evaluator eval(circuit, tables);
    benchmark::DoNotOptimize(eval.Evaluate(gl, el));
  }
}
BENCHMARK(BM_EvaluateComparator)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_ObliviousTransfer(benchmark::State& state) {
  const ModpGroup& group = ModpGroup::Get(
      state.range(0) == 768 ? ModpGroupId::kModp768
                            : state.range(0) == 1536 ? ModpGroupId::kModp1536
                                                     : ModpGroupId::kModp2048);
  DeterministicRng rng(8);
  OtMessage m0{}, m1{};
  m1.fill(0xFF);
  for (auto _ : state) {
    OtSender sender(group, rng);
    OtReceiver receiver(group, rng);
    const auto b = receiver.Round1(sender.Round1(), true);
    benchmark::DoNotOptimize(receiver.Decrypt(sender.Round2(b, m0, m1)));
  }
}
BENCHMARK(BM_ObliviousTransfer)->Arg(768)->Arg(1536)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_SecureCompare64(benchmark::State& state) {
  DeterministicRng rng(9);
  SecureCompareConfig cfg;
  cfg.group = state.range(0) == 768 ? ModpGroupId::kModp768
                                    : ModpGroupId::kModp2048;
  for (auto _ : state) {
    pem::net::MessageBus bus(2);
    pem::net::Endpoint garbler = bus.endpoint(0);
    pem::net::Endpoint evaluator = bus.endpoint(1);
    benchmark::DoNotOptimize(
        SecureCompareLess(garbler, 123456, evaluator, 654321, cfg, rng));
  }
}
BENCHMARK(BM_SecureCompare64)->Arg(768)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
