// Fig. 4: sizes of the seller and buyer coalitions across the 720
// one-minute trading windows of the day (300 smart homes).
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace pem;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  const int homes = flags.homes > 0 ? flags.homes : 300;

  bench::PrintHeader("Fig. 4", "coalition sizes vs. trading windows");
  const grid::CommunityTrace trace = bench::MakeTrace(homes, flags.windows);

  core::SimulationConfig cfg;  // plaintext engine
  const core::SimulationResult r = core::RunSimulation(trace, cfg);

  CsvWriter csv(flags.out_dir + "/fig4_coalitions.csv",
                {"window", "buyers", "sellers"});
  std::printf("%8s %8s %8s\n", "window", "buyers", "sellers");
  int peak_sellers = 0, peak_buyers = 0;
  for (const core::WindowRecord& rec : r.windows) {
    csv.Row({CsvWriter::Num(int64_t{rec.window}),
             CsvWriter::Num(int64_t{rec.num_buyers}),
             CsvWriter::Num(int64_t{rec.num_sellers})});
    if (rec.window % 60 == 0) {  // print every hour to keep stdout short
      std::printf("%8d %8d %8d\n", rec.window, rec.num_buyers,
                  rec.num_sellers);
    }
    peak_sellers = std::max(peak_sellers, rec.num_sellers);
    peak_buyers = std::max(peak_buyers, rec.num_buyers);
  }
  std::printf(
      "\nsummary: %d homes; peak buyers = %d, peak sellers = %d\n"
      "expected shape: buyers dominate the edges of the day, sellers peak "
      "midday (paper Fig. 4)\n",
      homes, peak_buyers, peak_sellers);
  return 0;
}
