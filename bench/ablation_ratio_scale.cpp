// Ablation (DESIGN.md §6): precision of the Protocol-4 reciprocal
// trick as a function of the integer scale K.
//
// Each buyer sends Enc(E_b)^round(K/|sn_j|); the seller recovers the
// ratio |sn_j|/E_b as K / Dec(...).  Larger K means smaller rounding
// error but bigger plaintexts.  This bench sweeps K and reports the
// worst-case relative allocation error over a realistic demand mix.
#include <cmath>
#include <cstdio>
#include <vector>

#include "util/fixed_point.h"

int main() {
  using namespace pem;

  std::printf("=== Ablation: Protocol-4 ratio scale K vs. precision ===\n");

  // Fixed-point demands in micro-kWh: a realistic per-minute mix from
  // 0.1 Wh to 20 kWh.
  const std::vector<int64_t> demands = {100,     2'000,     20'000,
                                        350'000, 5'000'000, 20'000'000};
  int64_t total = 0;
  for (int64_t d : demands) total += d;

  std::printf("%14s %22s %26s\n", "K", "worst rel. error",
              "max plaintext bits");
  for (int log_k = 20; log_k <= 60; log_k += 8) {
    const int64_t big_k = int64_t{1} << log_k;
    double worst = 0.0;
    double max_bits = 0.0;
    for (int64_t d : demands) {
      const int64_t scalar = RoundDiv(big_k, d);
      // Decrypted value the aggregator sees: total * scalar.
      const double v = static_cast<double>(total) * static_cast<double>(scalar);
      const double ratio = static_cast<double>(big_k) / v;
      const double truth =
          static_cast<double>(d) / static_cast<double>(total);
      worst = std::max(worst, std::abs(ratio - truth) / truth);
      max_bits = std::max(max_bits, std::log2(v));
    }
    std::printf("%14lld %22.3g %26.1f\n",
                static_cast<long long>(big_k), worst, max_bits);
  }
  std::printf(
      "\ntakeaway: K = 2^40 (the library default) keeps the worst-case "
      "allocation error below ~1e-6 while the plaintext stays far below "
      "even a 128-bit Paillier modulus\n");
  return 0;
}
