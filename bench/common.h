// Shared harness utilities for the paper-figure benches.
//
// Each bench binary reproduces one table or figure from the paper's
// §VII evaluation (see EXPERIMENTS.md for the experiment index and the
// paper-vs-measured record).  Flags:
//   --homes=N      community size (defaults per figure)
//   --windows=N    trading windows in the day (default 720)
//   --samples=N    crypto benches: how many windows to actually execute
//                  per configuration (results are averaged; see
//                  EXPERIMENTS.md "sampling" note)
//   --out=DIR      where CSV series are written (default ".")
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "grid/trace.h"
#include "net/transport.h"
#include "util/csv.h"

namespace pem::bench {

struct Flags {
  int homes = 0;       // 0 = per-bench default
  int windows = 720;
  int samples = 2;
  std::string out_dir = ".";

  static Flags Parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&](const char* prefix) -> const char* {
        const size_t n = std::strlen(prefix);
        return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
      };
      if (const char* v = value("--homes=")) {
        f.homes = std::atoi(v);
      } else if (const char* v = value("--windows=")) {
        f.windows = std::atoi(v);
      } else if (const char* v = value("--samples=")) {
        f.samples = std::atoi(v);
      } else if (const char* v = value("--out=")) {
        f.out_dir = v;
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    if (f.windows < 1 || f.samples < 1) {
      std::fprintf(stderr, "--windows and --samples must be >= 1\n");
      std::exit(2);
    }
    return f;
  }
};

inline grid::CommunityTrace MakeTrace(int homes, int windows,
                                      uint64_t seed = 20200425) {
  grid::TraceConfig cfg;
  cfg.num_homes = homes;
  cfg.windows_per_day = windows;
  cfg.seed = seed;
  return grid::GenerateCommunityTrace(cfg);
}

// Runs the crypto engine on `samples` evenly spaced windows and
// returns the per-window averages (runtime seconds, bus bytes).
struct CryptoWindowCost {
  double avg_runtime_seconds = 0.0;
  double avg_bus_bytes = 0.0;
  int windows_executed = 0;
};

inline CryptoWindowCost MeasureCryptoWindows(
    const grid::CommunityTrace& trace, int key_bits, int samples,
    net::ExecutionPolicy policy = net::ExecutionPolicy::Serial()) {
  core::SimulationConfig cfg;
  cfg.engine = core::Engine::kCrypto;
  cfg.pem.key_bits = key_bits;
  cfg.policy = policy;
  // Sample evenly across the active part of the day: start mid-morning
  // so degenerate no-market windows do not dilute the average.
  cfg.window_offset = trace.windows_per_day / 6;
  const int active = trace.windows_per_day - cfg.window_offset;
  cfg.window_stride = samples >= active ? 1 : active / samples;
  const core::SimulationResult r = core::RunSimulation(trace, cfg);
  CryptoWindowCost cost;
  cost.avg_runtime_seconds = r.AverageRuntimeSeconds();
  cost.avg_bus_bytes = r.AverageBusBytes();
  cost.windows_executed = static_cast<int>(r.windows.size());
  return cost;
}

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("=== %s — %s ===\n", figure, description);
}

}  // namespace pem::bench
