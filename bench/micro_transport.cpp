// Raw transport throughput: frames/sec and MB/s per backend, frame
// size, and community size.
//
// The shm transport exists for exactly one reason — co-located agents
// should not pay two kernel copies plus a router hop per frame — and
// this bench is where that claim gets a number.  One sender streams
// frames round-robin to every other agent while the receivers consume
// concurrently (the forked backends really overlap; the in-process
// ones run the same script on one thread), so the figure is streaming
// throughput under each backend's own backpressure, not round-trip
// latency.
//
// Output: a human table plus one JSON line per configuration (for
// scripted comparisons).  See EXPERIMENTS.md "Co-located zero-copy
// deployment" for the measured numbers and the single-core CI caveat:
// on a 1-vCPU container the forked backends serialize onto one core
// and the shm advantage shrinks to the syscall savings; the >= 2x gap
// over socketpairs shows on multicore hosts.
//
// Flags:
//   --frames=N   frame count for the smallest size (default 4096;
//                scaled down as the frame size grows so every config
//                moves a comparable byte volume)
//   --agents=CSV community sizes to sweep (default "2,4")
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/process_transport.h"
#include "net/serialize.h"
#include "net/shm_transport.h"
#include "net/tcp_transport.h"
#include "net/transport.h"

namespace pem {
namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  net::TransportKind kind = net::TransportKind::kSerialBus;
  int agents = 2;
  size_t frame_bytes = 64;  // payload size per frame
  int frames = 0;
};

struct RunStats {
  double seconds = 0.0;
  uint64_t wire_bytes = 0;  // FramedSize-accounted bytes moved
};

std::vector<uint8_t> BenchPayload(size_t len) {
  std::vector<uint8_t> p(len);
  for (size_t i = 0; i < len; ++i) p[i] = static_cast<uint8_t>(i * 17 + 3);
  return p;
}

// The deterministic streaming script both deployment models run: agent
// 0 sends `frames` frames round-robin to agents 1..n-1, each receiver
// consumes its share.  In-process backends execute it on one thread;
// forked backends run it as the shared ChildMain, where each process
// performs only its own agent's real wire operations.
void StreamScript(std::vector<net::Endpoint>& eps, int frames,
                  const std::vector<uint8_t>& payload) {
  const int n = static_cast<int>(eps.size());
  for (int i = 0; i < frames; ++i) {
    const net::AgentId to = 1 + (i % (n - 1));
    eps[0].Send(to, /*type=*/100, payload);
    (void)eps[static_cast<size_t>(to)].Receive();
  }
}

RunStats RunInProcess(const Config& c) {
  std::unique_ptr<net::Transport> bus =
      net::MakeTransport(c.kind, c.agents);
  std::vector<net::Endpoint> eps = bus->endpoints();
  const std::vector<uint8_t> payload = BenchPayload(c.frame_bytes);
  const auto start = Clock::now();
  StreamScript(eps, c.frames, payload);
  const double secs = std::chrono::duration<double>(Clock::now() - start)
                          .count();
  return RunStats{secs, bus->total_bytes()};
}

RunStats RunForked(const Config& c) {
  net::AgentSupervisor::ChildMain child_main =
      [frames = c.frames, frame_bytes = c.frame_bytes](
          net::AgentId, net::Transport& wire,
          net::ControlChannel& ctl) -> int {
    const std::vector<uint8_t> payload = BenchPayload(frame_bytes);
    for (;;) {
      const net::ControlRecord cmd = ctl.Read(/*timeout_ms=*/120'000);
      if (cmd.tag == net::kCtlCmdShutdown) {
        ctl.Write(net::kCtlRepDone);
        return 0;
      }
      std::vector<net::Endpoint> eps = wire.endpoints();
      StreamScript(eps, frames, payload);
      ctl.Write(net::kCtlRepWindow);
    }
  };

  std::unique_ptr<net::AgentSupervisor> owner;
  switch (c.kind) {
    case net::TransportKind::kProcess:
      owner = std::make_unique<net::ProcessTransport>(c.agents, child_main);
      break;
    case net::TransportKind::kTcp: {
      net::TcpTransport::Options opts;  // trusting mode: measure the wire
      owner = std::make_unique<net::TcpTransport>(c.agents, child_main,
                                                  std::move(opts));
      break;
    }
    case net::TransportKind::kShm: {
      net::ShmTransport::Options opts;
      opts.verify_frames = false;  // match the tcp row: trust the medium
      owner = std::make_unique<net::ShmTransport>(c.agents, child_main, opts);
      break;
    }
    default:
      std::fprintf(stderr, "not a forked backend\n");
      std::exit(2);
  }
  const auto start = Clock::now();
  owner->CommandAll(net::kCtlCmdRun);
  for (net::AgentId a = 0; a < c.agents; ++a) {
    (void)owner->ReadRecord(a);
  }
  owner->SyncLedger();
  const double secs = std::chrono::duration<double>(Clock::now() - start)
                          .count();
  const uint64_t bytes = owner->total_bytes();
  owner->Shutdown();
  return RunStats{secs, bytes};
}

bool Forked(net::TransportKind k) {
  return k == net::TransportKind::kProcess ||
         k == net::TransportKind::kTcp || k == net::TransportKind::kShm;
}

}  // namespace
}  // namespace pem

int main(int argc, char** argv) {
  using namespace pem;
  int base_frames = 4096;
  std::vector<int> agent_counts = {2, 4};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--frames=", 0) == 0) {
      base_frames = std::atoi(arg.c_str() + 9);
      if (base_frames < 1) {
        std::fprintf(stderr, "--frames must be >= 1\n");
        return 2;
      }
    } else if (arg.rfind("--agents=", 0) == 0) {
      agent_counts.clear();
      std::string csv = arg.substr(9);
      for (size_t pos = 0; pos < csv.size();) {
        const size_t comma = csv.find(',', pos);
        const std::string tok =
            csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
        const int n = std::atoi(tok.c_str());
        if (n < 2) {
          std::fprintf(stderr, "--agents entries must be >= 2\n");
          return 2;
        }
        agent_counts.push_back(n);
        pos = comma == std::string::npos ? csv.size() : comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  const std::vector<std::pair<net::TransportKind, const char*>> kBackends = {
      {net::TransportKind::kConcurrentBus, "concurrent"},
      {net::TransportKind::kSocket, "socket"},
      {net::TransportKind::kProcess, "process"},
      {net::TransportKind::kTcp, "tcp"},
      {net::TransportKind::kShm, "shm"},
  };
  const std::vector<size_t> kFrameSizes = {64, 4096, 64 * 1024};

  std::printf("=== micro_transport — frames/sec and MB/s per backend ===\n");
  std::printf("%-12s %8s %7s %8s %10s %12s %10s\n", "backend", "frame_B",
              "agents", "frames", "seconds", "frames/s", "MB/s");
  for (const int agents : agent_counts) {
    for (const size_t frame_bytes : kFrameSizes) {
      for (const auto& [kind, name] : kBackends) {
        Config c;
        c.kind = kind;
        c.agents = agents;
        c.frame_bytes = frame_bytes;
        // Comparable byte volume per config: scale the frame count
        // down as frames grow (floor so even 64 KiB moves real data).
        c.frames = static_cast<int>(
            std::max<size_t>(64, static_cast<size_t>(base_frames) * 64 /
                                     std::max<size_t>(64, frame_bytes)));
        const RunStats r = Forked(kind) ? RunForked(c) : RunInProcess(c);
        const double fps = static_cast<double>(c.frames) / r.seconds;
        const double mbps = static_cast<double>(r.wire_bytes) /
                            (1024.0 * 1024.0) / r.seconds;
        std::printf("%-12s %8zu %7d %8d %10.4f %12.0f %10.2f\n", name,
                    frame_bytes, agents, c.frames, r.seconds, fps, mbps);
        std::printf(
            "{\"bench\":\"micro_transport\",\"backend\":\"%s\","
            "\"frame_bytes\":%zu,\"agents\":%d,\"frames\":%d,"
            "\"seconds\":%.6f,\"frames_per_sec\":%.1f,\"mb_per_sec\":%.3f,"
            "\"wire_bytes\":%llu}\n",
            name, frame_bytes, agents, c.frames, r.seconds, fps, mbps,
            static_cast<unsigned long long>(r.wire_bytes));
      }
    }
  }
  return 0;
}
