// Ablation: flat ring vs hierarchical aggregation topologies.
//
// The flat ring of Protocols 2-4 costs n-1 strictly sequential hops
// per aggregation — the critical path the paper's runtime figures
// climb with n.  A k-ary hierarchy of sub-rings (protocol/topology.h)
// computes the same sums in O(log n) sequential hops at the price of a
// few extra leader-delivery frames.  This bench sweeps community size
// x fan-out and reports the plan's critical-path hops, crypto-engine
// throughput, and the per-agent byte profile (the Table-I number whose
// shape the hierarchy changes).
//
// Market outcomes are plan-shape-invariant (asserted by
// tests/protocol/test_topology.cpp across all six backends); what this
// bench quantifies is the latency/bandwidth trade.
//
// `--json` emits one JSON object per row (JSON lines) for the CI bench
// artifact instead of the human table.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "grid/trace.h"
#include "protocol/topology.h"

int main(int argc, char** argv) {
  using namespace pem;

  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  if (!json) {
    std::printf("=== Ablation: aggregation topology (flat vs k-ary) ===\n");
    std::printf("%6s %8s %10s %14s %14s %16s\n", "n", "fanout", "hops",
                "windows/s", "s/window", "B/agent/window");
  }

  for (int n : {8, 16, 32}) {
    for (int fanout : {0, 2, 4, 8}) {  // 0 = flat
      protocol::TopologyConfig topology;
      if (fanout > 0) {
        topology.kind = protocol::TopologyKind::kHierarchical;
        topology.fanout = fanout;
      }

      // The plan metric: hops on the worst-case full-community ring.
      // Coalition rings are subsets, so this is the bound the runtime
      // figure rides on.
      std::vector<size_t> members(static_cast<size_t>(n));
      for (size_t i = 0; i < members.size(); ++i) members[i] = i;
      const int hops =
          protocol::AggregationTopology::Build(members, topology, 0)
              .CriticalPathHops();

      grid::TraceConfig tc;
      tc.num_homes = n;
      tc.windows_per_day = 6;
      tc.seed = 13;
      const grid::CommunityTrace trace = grid::GenerateCommunityTrace(tc);

      core::SimulationConfig cfg;
      cfg.engine = core::Engine::kCrypto;
      cfg.pem.key_bits = 128;
      cfg.pem.topology = topology;
      const core::SimulationResult r = core::RunSimulation(trace, cfg);

      const double windows = static_cast<double>(r.windows.size());
      const double s_per_window = r.AverageRuntimeSeconds();
      const double windows_per_s =
          s_per_window > 0 ? 1.0 / s_per_window : 0.0;
      const double bytes_per_agent_window =
          windows > 0 ? r.AverageBusBytes() / static_cast<double>(n) : 0.0;

      if (json) {
        std::printf(
            "{\"bench\":\"ablation_topology\",\"n\":%d,\"fanout\":%d,"
            "\"topology\":\"%s\",\"critical_path_hops\":%d,"
            "\"windows_per_sec\":%.3f,\"seconds_per_window\":%.4f,"
            "\"bytes_per_agent_per_window\":%.1f}\n",
            n, fanout, fanout > 0 ? "hierarchical" : "flat", hops,
            windows_per_s, s_per_window, bytes_per_agent_window);
      } else {
        std::printf("%6d %8s %10d %14.2f %14.4f %16.1f\n", n,
                    fanout > 0 ? std::to_string(fanout).c_str() : "flat",
                    hops, windows_per_s, s_per_window,
                    bytes_per_agent_window);
      }
    }
  }
  if (!json) {
    std::printf(
        "\ntakeaway: the hierarchy collapses the sequential hop count from "
        "n-1 to a few per level (strictly below n-1 for every n >= 8) while "
        "the per-agent byte profile gains only the leader-delivery frames — "
        "the latency win the flat ring leaves on the table\n");
  }
  return 0;
}
