// Table I: average bandwidth per smart home while executing the secure
// computation, for 512/1024/2048-bit keys among 200 homes, over
// different numbers of trading windows m.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace pem;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  const int homes = flags.homes > 0 ? flags.homes : 200;
  const std::vector<int> key_sizes = {512, 1024, 2048};

  bench::PrintHeader("Table I", "average bandwidth (MB) per smart home");
  const grid::CommunityTrace trace = bench::MakeTrace(homes, flags.windows);
  CsvWriter csv(flags.out_dir + "/table1_bandwidth.csv",
                {"m", "key_bits", "avg_mb_per_home"});

  // Average per-home bytes in one window, measured per key size.
  std::vector<std::pair<int, double>> per_window_mb;
  for (int bits : key_sizes) {
    const bench::CryptoWindowCost cost =
        bench::MeasureCryptoWindows(trace, bits, flags.samples);
    per_window_mb.emplace_back(
        bits, cost.avg_bus_bytes / homes / (1024.0 * 1024.0));
  }

  std::printf("%8s", "m");
  for (int bits : key_sizes) std::printf(" %10d-bit", bits);
  std::printf("   (cumulative MB per home over m windows)\n");
  for (int m = 300; m <= flags.windows; m += 60) {
    std::printf("%8d", m);
    for (const auto& [bits, mb] : per_window_mb) {
      const double total = mb * m;
      std::printf(" %14.2f", total);
      csv.Row({CsvWriter::Num(int64_t{m}), CsvWriter::Num(int64_t{bits}),
               CsvWriter::Num(total)});
    }
    std::printf("\n");
  }
  std::printf("\nper-window averages (KB per home):");
  for (const auto& [bits, mb] : per_window_mb) {
    std::printf("  %d-bit: %.2f", bits, mb * 1024.0);
  }
  std::printf(
      "\nexpected shape: bandwidth roughly doubles with the key size "
      "(paper Table I: 0.45 / 0.84 / 1.87 MB at 512/1024/2048-bit)\n");
  return 0;
}
