// Fig. 5(c): total runtime for a full 720-window day as the number of
// agents grows, for the three key sizes.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace pem;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  // The paper sweeps 100..300 in steps of 25; the default here uses
  // three points to keep the no-flag run short (pass --homes for more).
  const std::vector<int> populations =
      flags.homes > 0 ? std::vector<int>{flags.homes}
                      : std::vector<int>{100, 200, 300};
  const std::vector<int> key_sizes = {512, 1024, 2048};

  bench::PrintHeader("Fig. 5(c)",
                     "total runtime over the day vs. number of agents");
  CsvWriter csv(flags.out_dir + "/fig5c_runtime_agents.csv",
                {"n", "key_bits", "total_runtime_sec"});

  std::printf("%6s", "n");
  for (int bits : key_sizes) std::printf(" %12d-bit", bits);
  std::printf("   (projected total over %d windows, s)\n", flags.windows);
  for (int n : populations) {
    const grid::CommunityTrace trace = bench::MakeTrace(n, flags.windows);
    std::printf("%6d", n);
    for (int bits : key_sizes) {
      const bench::CryptoWindowCost cost =
          bench::MeasureCryptoWindows(trace, bits, flags.samples);
      const double total = cost.avg_runtime_seconds * flags.windows;
      std::printf(" %16.1f", total);
      csv.Row({CsvWriter::Num(int64_t{n}), CsvWriter::Num(int64_t{bits}),
               CsvWriter::Num(total)});
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: runtime increases with n (paper Fig. 5c)\n");
  return 0;
}
