// Ablation: the phase-parallel protocol engine.
//
// The paper runs each agent in its own container on an 8-core host, so
// the n ring encryptions of Protocols 2-4 happen concurrently; the
// serial engine times them sequentially, which is why its Fig. 5(a)
// numbers are ~8x the paper's.  This bench sweeps the execution policy
// — worker count x transport backend — and reports each configuration's
// per-window runtime and its speedup over the serial baseline.  The
// wire transcript is identical across all rows (see
// test_transcript_parity); only the wall clock moves.
#include <cstdio>

#include "bench/common.h"
#include "net/transport.h"
#include "util/parallel.h"

int main(int argc, char** argv) {
  using namespace pem;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  const int homes = flags.homes > 0 ? flags.homes : 200;
  const int key_bits = 2048;

  bench::PrintHeader("Ablation",
                     "phase-parallel engine (2048-bit, n=200 default)");
  const grid::CommunityTrace trace = bench::MakeTrace(homes, flags.windows);

  const unsigned hw = DefaultThreads();
  // Always include 8 (the paper's core count) so the printed takeaway
  // has its reference row; add the machine's own count when bigger.
  std::vector<int> thread_counts = {1, 2, 4, 8};
  if (static_cast<int>(hw) > 8) thread_counts.push_back(static_cast<int>(hw));

  std::printf("%12s %10s %24s %10s\n", "transport", "threads",
              "avg runtime/window (s)", "speedup");
  double serial_baseline = 0.0;
  for (const net::TransportKind kind :
       {net::TransportKind::kSerialBus, net::TransportKind::kConcurrentBus,
        net::TransportKind::kSocket}) {
    for (const int threads : thread_counts) {
      const net::ExecutionPolicy policy{kind, threads};
      const bench::CryptoWindowCost cost = bench::MeasureCryptoWindows(
          trace, key_bits, flags.samples, policy);
      if (kind == net::TransportKind::kSerialBus && threads == 1) {
        serial_baseline = cost.avg_runtime_seconds;
      }
      const double speedup = cost.avg_runtime_seconds > 0.0
                                 ? serial_baseline / cost.avg_runtime_seconds
                                 : 0.0;
      std::printf("%12s %10d %24.3f %9.2fx\n", net::TransportKindName(kind),
                  threads, cost.avg_runtime_seconds, speedup);
    }
  }
  // Forked backends: one OS process per agent, frames over real
  // socketpairs (process) or loopback TCP connections (tcp) through
  // the parent router.  Swept at a smaller community: each child
  // re-derives the full deterministic schedule (shadow compute) while
  // performing only its own wire I/O, so the point of these backends
  // is deployment realism — literal cross-process / network Table-I
  // bytes, real fork/IPC/TCP cost in the wall clock — not speedup.
  const int process_homes = homes < 12 ? homes : 12;
  const grid::CommunityTrace process_trace =
      bench::MakeTrace(process_homes, flags.windows);
  std::printf("\nforked backends (n=%d, one OS process per agent):\n",
              process_homes);
  std::printf("%12s %10s %24s %16s\n", "transport", "threads",
              "avg runtime/window (s)", "avg bytes/window");
  for (const net::TransportKind kind :
       {net::TransportKind::kProcess, net::TransportKind::kTcp}) {
    for (const int threads : {1, 4}) {
      const bench::CryptoWindowCost cost = bench::MeasureCryptoWindows(
          process_trace, key_bits, flags.samples,
          net::ExecutionPolicy{kind, threads});
      std::printf("%12s %10d %24.3f %16.0f\n", net::TransportKindName(kind),
                  threads, cost.avg_runtime_seconds, cost.avg_bus_bytes);
    }
  }

  std::printf(
      "\n(this machine reports %u hardware threads)\n"
      "takeaway: the compute phase (one r^n exponentiation per ring member)\n"
      "scales down with workers until the sequential forward pass and the GC\n"
      "comparison dominate — the paper's ~1 s/window on 8 ARM cores is\n"
      "consistent with the 8-thread point on comparable hardware; the\n"
      "concurrent transport adds only mutex overhead at equal thread count,\n"
      "the socket transport adds the syscall + frame-codec cost of a real\n"
      "per-container deployment on top of that, and the forked backends\n"
      "(fork-per-agent socketpairs, and loopback TCP with rendezvous +\n"
      "TCP_NODELAY) pay shadow re-derivation per child — their bytes, not\n"
      "their wall clock, are the paper-faithful number\n",
      hw);
  return 0;
}
