// Ablation: emulated deployment parallelism.
//
// The paper runs each agent in its own container on an 8-core host, so
// the n ring encryptions of Protocols 2-3 happen concurrently; our
// default build times them sequentially, which is why our Fig. 5(a)
// numbers are ~8x the paper's.  This bench sweeps the worker count to
// show the per-window runtime converging toward the paper's regime.
#include <cstdio>

#include "bench/common.h"
#include "util/parallel.h"

int main(int argc, char** argv) {
  using namespace pem;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  const int homes = flags.homes > 0 ? flags.homes : 200;
  const int key_bits = 2048;

  bench::PrintHeader("Ablation", "parallel ring encryption (2048-bit, n=200)");
  const grid::CommunityTrace trace = bench::MakeTrace(homes, flags.windows);

  std::printf("%10s %24s\n", "threads", "avg runtime/window (s)");
  for (int threads : {1, 2, 4, 8}) {
    core::SimulationConfig cfg;
    cfg.engine = core::Engine::kCrypto;
    cfg.pem.key_bits = key_bits;
    cfg.pem.parallel_threads = threads;
    cfg.window_offset = trace.windows_per_day / 6;
    const int active = trace.windows_per_day - cfg.window_offset;
    cfg.window_stride =
        flags.samples >= active ? 1 : active / flags.samples;
    const core::SimulationResult r = core::RunSimulation(trace, cfg);
    std::printf("%10d %24.3f\n", threads, r.AverageRuntimeSeconds());
  }
  std::printf(
      "\n(this machine reports %u hardware threads)\n"
      "takeaway: runtime scales down with workers until the sequential "
      "multiplication pass and the GC comparison dominate — the paper's "
      "~1 s/window on 8 ARM cores is consistent with our 8-thread point\n",
      DefaultThreads());
  return 0;
}
