// Fig. 5(b): total runtime vs. number of trading windows for key sizes
// 512/1024/2048-bit among 200 agents.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace pem;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  const int homes = flags.homes > 0 ? flags.homes : 200;
  const std::vector<int> key_sizes = {512, 1024, 2048};

  bench::PrintHeader("Fig. 5(b)", "total runtime vs. windows (n=200)");
  CsvWriter csv(flags.out_dir + "/fig5b_runtime_keys.csv",
                {"num_windows", "key_bits", "total_runtime_sec"});

  const grid::CommunityTrace trace = bench::MakeTrace(homes, flags.windows);
  std::printf("%10s %22s\n", "key bits", "avg runtime/window (s)");
  std::vector<std::pair<int, double>> averages;
  for (int bits : key_sizes) {
    const bench::CryptoWindowCost cost =
        bench::MeasureCryptoWindows(trace, bits, flags.samples);
    averages.emplace_back(bits, cost.avg_runtime_seconds);
    std::printf("%10d %22.3f\n", bits, cost.avg_runtime_seconds);
  }

  std::printf("\n%10s", "windows");
  for (int bits : key_sizes) std::printf(" %12d-bit", bits);
  std::printf("\n");
  for (int m = 120; m <= flags.windows; m += 120) {
    std::printf("%10d", m);
    for (const auto& [bits, avg] : averages) {
      const double total = avg * m;
      std::printf(" %16.1f", total);
      csv.Row({CsvWriter::Num(int64_t{m}), CsvWriter::Num(int64_t{bits}),
               CsvWriter::Num(total)});
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpected shape: linear in m; paper reports near-identical lines per "
      "key size (their encryption runs during idle time in parallel; our "
      "single-threaded build shows the key-size cost explicitly — see "
      "EXPERIMENTS.md)\n");
  return 0;
}
