// Ablation (DESIGN.md §6): CRT acceleration of both halves of the
// Paillier hot path.
//
//   * Decryption: mod p²/q² with exponents reduced mod p-1/q-1 vs. the
//     textbook L-function path.  Expected ~3-4x (the exponents halve
//     along with the moduli).
//   * Encryption (owner side): the r^n randomness factor mod p²/q²
//     (with the p | e_p exponent split, see PaillierCrtEncryptor) plus
//     Garner recombination vs. the full-width mod-n² path.  Expected
//     ~2x at 512-bit growing to ~3x+ at 2048-bit, with bit-identical
//     output (asserted by tests/crypto/test_paillier.cpp's KATs).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "crypto/paillier.h"
#include "crypto/rng.h"

namespace {

using namespace pem::crypto;

void BM_DecryptCrtToggle(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const bool use_crt = state.range(1) != 0;
  DeterministicRng rng(1);
  PaillierKeyPair kp = GeneratePaillierKeyPair(bits, rng);
  kp.priv.set_use_crt(use_crt);
  const PaillierCiphertext ct = kp.pub.EncryptSigned(123456789, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.priv.DecryptSigned(ct));
  }
  state.SetLabel(use_crt ? "crt" : "plain");
}
BENCHMARK(BM_DecryptCrtToggle)
    ->Args({512, 0})->Args({512, 1})
    ->Args({1024, 0})->Args({1024, 1})
    ->Args({2048, 0})->Args({2048, 1})
    ->Unit(benchmark::kMicrosecond);

// The encryption hot spot in isolation: the plaintext-independent
// r^n factor, owner CRT path vs. public full-width path, over a fixed
// set of pre-sampled r values (sampling cost excluded from both rows).
void BM_EncryptFactorCrtToggle(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const bool use_crt = state.range(1) != 0;
  DeterministicRng rng(2);
  const PaillierKeyPair kp = GeneratePaillierKeyPair(bits, rng);
  const PaillierCrtEncryptor crt(kp.priv);
  std::vector<BigInt> rs;
  for (int i = 0; i < 16; ++i) rs.push_back(kp.pub.SampleRandomness(rng));
  size_t i = 0;
  for (auto _ : state) {
    const BigInt& r = rs[i];
    i = (i + 1) % rs.size();
    benchmark::DoNotOptimize(
        use_crt ? crt.RandomnessFactor(r)
                : r.PowMod(kp.pub.n(), kp.pub.n_squared()));
  }
  state.SetLabel(use_crt ? "owner-crt" : "public");
}
BENCHMARK(BM_EncryptFactorCrtToggle)
    ->Args({512, 0})->Args({512, 1})
    ->Args({1024, 0})->Args({1024, 1})
    ->Args({2048, 0})->Args({2048, 1})
    ->Unit(benchmark::kMicrosecond);

// End-to-end signed encryption, owner CRT vs. public path (includes
// sampling and the g^m assembly, so the gap narrows vs. factor-only).
void BM_EncryptSignedCrtToggle(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const bool use_crt = state.range(1) != 0;
  DeterministicRng rng(3);
  const PaillierKeyPair kp = GeneratePaillierKeyPair(bits, rng);
  const PaillierCrtEncryptor crt(kp.priv);
  for (auto _ : state) {
    benchmark::DoNotOptimize(use_crt ? crt.EncryptSigned(-987654, rng)
                                     : kp.pub.EncryptSigned(-987654, rng));
  }
  state.SetLabel(use_crt ? "owner-crt" : "public");
}
BENCHMARK(BM_EncryptSignedCrtToggle)
    ->Args({512, 0})->Args({512, 1})
    ->Args({1024, 0})->Args({1024, 1})
    ->Args({2048, 0})->Args({2048, 1})
    ->Unit(benchmark::kMicrosecond);

// The idle-time refill as the simulation runs it: pool topped up by
// `threads` workers, with/without the owner's CRT tables attached.
// Wall time per refill of 32 factors; the factor sequence is identical
// in every row (tests assert it), so the rows differ in speed only.
void BM_PoolRefillCrtThreads(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const bool use_crt = state.range(1) != 0;
  const unsigned threads = static_cast<unsigned>(state.range(2));
  DeterministicRng rng(4);
  const PaillierKeyPair kp = GeneratePaillierKeyPair(bits, rng);
  // Built once: the encryptor's setup (two divisions + one InvMod) is
  // idle-time key material, not part of the per-refill cost — charging
  // it to the CRT rows only would skew the comparison.
  const PaillierCrtEncryptor crt(kp.priv);
  for (auto _ : state) {
    PaillierRandomnessPool pool(kp.pub);
    if (use_crt) pool.AttachCrtEncryptor(crt);
    pool.Refill(32, rng, threads);
    benchmark::DoNotOptimize(pool.available());
  }
  state.SetLabel(std::string(use_crt ? "owner-crt" : "public") + "/t" +
                 std::to_string(threads));
}
BENCHMARK(BM_PoolRefillCrtThreads)
    ->Args({1024, 0, 1})->Args({1024, 0, 4})
    ->Args({1024, 1, 1})->Args({1024, 1, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
