// Ablation (DESIGN.md §6): CRT-accelerated Paillier decryption vs. the
// textbook L-function path.  Expected: ~3-4x speedup from working mod
// p^2 and q^2 instead of n^2.
#include <benchmark/benchmark.h>

#include "crypto/paillier.h"
#include "crypto/rng.h"

namespace {

using namespace pem::crypto;

void BM_DecryptCrtToggle(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const bool use_crt = state.range(1) != 0;
  DeterministicRng rng(1);
  PaillierKeyPair kp = GeneratePaillierKeyPair(bits, rng);
  kp.priv.set_use_crt(use_crt);
  const PaillierCiphertext ct = kp.pub.EncryptSigned(123456789, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.priv.DecryptSigned(ct));
  }
  state.SetLabel(use_crt ? "crt" : "plain");
}
BENCHMARK(BM_DecryptCrtToggle)
    ->Args({512, 0})->Args({512, 1})
    ->Args({1024, 0})->Args({1024, 1})
    ->Args({2048, 0})->Args({2048, 1})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
