// Ablation: batched multi-window scheduling (windows_in_flight).
//
// The paper's Fig. 5 runtime story leaves idle time on the table
// between windows: the serial loop finishes window w everywhere before
// window w+1 draws its first byte.  protocol::WindowScheduler keeps up
// to windows_in_flight sampled windows in flight — in-process the
// compute phases of a batch share one persistent worker team (no
// per-phase thread spawn/join), on the forked backends the parent
// pipelines kCtlCmdRun dispatch so the children overlap whole windows.
// Randomness and sends stay sequential per window, so the transcript
// is bit-identical to the serial loop's (the serial-vs-batched parity
// wall in tests/integration/test_transcript_parity.cpp).
//
// This bench sweeps windows_in_flight x engine and reports crypto
// throughput, the attributed total (charged once per batch), and the
// sum of per-window spans — the gap between the last two is exactly
// the overlap the batching buys.  Bytes per window are printed to make
// the invariance visible in the artifact.
//
// `--json` emits one JSON object per row (JSON lines) for the CI bench
// artifact instead of the human table.
#include <cstdio>
#include <cstring>

#include "core/simulation.h"
#include "grid/trace.h"
#include "net/transport.h"

int main(int argc, char** argv) {
  using namespace pem;

  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  if (!json) {
    std::printf("=== Ablation: batched multi-window scheduling ===\n");
    std::printf("%12s %8s %10s %12s %12s %12s %14s\n", "backend", "threads",
                "in_flight", "windows/s", "total_s", "span_sum_s",
                "B/window");
  }

  grid::TraceConfig tc;
  tc.num_homes = 8;
  tc.windows_per_day = 6;
  tc.seed = 13;
  const grid::CommunityTrace trace = grid::GenerateCommunityTrace(tc);

  struct Row {
    const char* backend;
    net::ExecutionPolicy policy;
  };
  const Row rows[] = {
      // In-process fused compute: batching amortizes the per-fan-out
      // thread spawn/join onto one persistent team.
      {"concurrent", net::ExecutionPolicy::Parallel(4)},
      // Forked + pipelined dispatch: children overlap whole windows.
      {"process", net::ExecutionPolicy::Process()},
  };

  for (const Row& row : rows) {
    for (int in_flight : {1, 2, 4, 8}) {
      core::SimulationConfig cfg;
      cfg.engine = core::Engine::kCrypto;
      cfg.pem.key_bits = 128;
      cfg.policy = row.policy;
      cfg.windows_in_flight = in_flight;
      const core::SimulationResult r = core::RunSimulation(trace, cfg);

      const double windows = static_cast<double>(r.windows.size());
      double span_sum = 0.0;
      for (const core::WindowRecord& rec : r.windows) {
        span_sum += rec.runtime_seconds;
      }
      const double total = r.total_runtime_seconds;
      const double windows_per_s = total > 0 ? windows / total : 0.0;
      const double bytes_per_window =
          windows > 0 ? r.AverageBusBytes() : 0.0;

      if (json) {
        std::printf(
            "{\"bench\":\"ablation_batch\",\"backend\":\"%s\","
            "\"threads\":%u,\"windows_in_flight\":%d,"
            "\"windows_per_sec\":%.3f,\"total_runtime_seconds\":%.4f,"
            "\"window_span_sum_seconds\":%.4f,\"bytes_per_window\":%.1f}\n",
            row.backend, row.policy.worker_count(), in_flight, windows_per_s,
            total, span_sum, bytes_per_window);
      } else {
        std::printf("%12s %8u %10d %12.2f %12.4f %12.4f %14.1f\n",
                    row.backend, row.policy.worker_count(), in_flight,
                    windows_per_s, total, span_sum, bytes_per_window);
      }
    }
  }
  if (!json) {
    std::printf(
        "\ntakeaway: bytes per window are identical down the whole column "
        "(batching moves WHEN work runs, never what goes on the wire); on "
        "multi-core hosts total_s drops below span_sum_s as windows overlap "
        "— on a 1-core CI runner the two stay close and the win is the "
        "amortized thread spawn/join alone\n");
  }
  return 0;
}
